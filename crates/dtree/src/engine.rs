//! A sharded, multi-core serving engine over a compiled [`FlatTree`].
//!
//! The paper's end product classifies packets on the datapath; this
//! module is the deployment harness around [`FlatTree`]: a trace is
//! sharded into contiguous chunks, one per worker, and each worker
//! drives the batched wavefront lookup ([`FlatTree::classify_batch`])
//! over its shard. The tree is shared read-only (`&FlatTree` — no
//! locks, no cloning), workers are scoped threads, and results land in
//! disjoint sub-slices of the caller's output buffer, so the combined
//! output is **bit-identical** to running scalar
//! [`FlatTree::classify`] over the whole trace in order.
//!
//! [`run_engine`] wraps the sharded lookup in a timing loop and
//! reports aggregate packets/sec — the serving-throughput number the
//! benchmarks and the `serve-bench` CLI subcommand record.

use crate::flat::FlatTree;
use crate::node::RuleId;
use crate::serve::ClassifierHandle;
use classbench::Packet;

/// How a serving run is sharded and measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads the trace is sharded across (min 1).
    pub threads: usize,
    /// Times the whole trace is classified; the report aggregates all
    /// passes. More passes smooth out scheduler noise on short traces.
    pub passes: usize,
}

impl EngineConfig {
    /// `threads` workers, one timing pass.
    pub fn new(threads: usize) -> Self {
        EngineConfig { threads: threads.max(1), passes: 1 }
    }

    /// Set the number of timing passes (min 1).
    pub fn with_passes(mut self, passes: usize) -> Self {
        self.passes = passes.max(1);
        self
    }
}

/// Aggregate result of a timed [`run_engine`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineReport {
    /// Worker threads used.
    pub threads: usize,
    /// Total packets classified across all passes.
    pub packets: usize,
    /// Wall-clock seconds for all passes.
    pub seconds: f64,
    /// Aggregate throughput: `packets / seconds`.
    pub packets_per_sec: f64,
}

/// Classify `trace` into `out` using `threads` workers over the shared
/// tree. Shards are contiguous chunks, so `out[i]` is exactly what
/// `tree.classify(&trace[i])` returns regardless of the thread count.
///
/// # Panics
/// Panics if `trace` and `out` have different lengths.
pub fn classify_sharded(
    tree: &FlatTree,
    trace: &[Packet],
    out: &mut [Option<RuleId>],
    threads: usize,
) {
    // nc-lint: allow(no-panic-in-serving, error-taxonomy, reason = "documented length-contract guard (see # Panics); misuse is a caller bug, not runtime input")
    assert_eq!(trace.len(), out.len(), "output slice must match the trace");
    let threads = threads.max(1);
    if threads == 1 || trace.len() < 2 {
        tree.classify_batch(trace, out);
        return;
    }
    // Ceiling division so every packet lands in one of <= `threads`
    // contiguous shards (the last shard may be short).
    let shard = trace.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pkts, results) in trace.chunks(shard).zip(out.chunks_mut(shard)) {
            scope.spawn(move || tree.classify_batch(pkts, results));
        }
    });
}

/// Time a sharded serving run over `cfg.passes` passes and report the
/// aggregate packets/sec. Returns the classification results (which
/// are identical on every pass, and identical to scalar
/// [`FlatTree::classify`]) alongside the report.
///
/// Workers are spawned **once** and loop their passes internally, so
/// the measurement amortises thread start-up the way a long-lived
/// serving process would, instead of paying it once per pass.
pub fn run_engine(
    tree: &FlatTree,
    trace: &[Packet],
    cfg: EngineConfig,
) -> (Vec<Option<RuleId>>, EngineReport) {
    let threads = cfg.threads.max(1);
    let mut out = vec![None; trace.len()];
    let start = std::time::Instant::now();
    if threads == 1 || trace.len() < 2 {
        for _ in 0..cfg.passes {
            tree.classify_batch(trace, &mut out);
        }
    } else {
        let shard = trace.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (pkts, results) in trace.chunks(shard).zip(out.chunks_mut(shard)) {
                scope.spawn(move || {
                    for _ in 0..cfg.passes {
                        tree.classify_batch(pkts, results);
                    }
                });
            }
        });
    }
    let seconds = start.elapsed().as_secs_f64();
    let packets = trace.len() * cfg.passes;
    let report = EngineReport {
        threads,
        packets,
        seconds,
        packets_per_sec: if seconds > 0.0 { packets as f64 / seconds } else { 0.0 },
    };
    (out, report)
}

/// Aggregate result of a timed [`run_live_engine`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveEngineReport {
    /// Worker threads used.
    pub threads: usize,
    /// Total packets classified across all passes.
    pub packets: usize,
    /// Wall-clock seconds for all passes.
    pub seconds: f64,
    /// Aggregate throughput: `packets / seconds`.
    pub packets_per_sec: f64,
    /// Lowest snapshot epoch any worker served from.
    pub min_epoch: u64,
    /// Highest snapshot epoch any worker served from.
    pub max_epoch: u64,
}

/// Classify `trace` into `out` using `threads` workers reading
/// **through the handle**: each worker fetches the current snapshot
/// once and serves its shard from it. With no concurrent updates this
/// is bit-identical to [`classify_sharded`] over the handle's compiled
/// tree; under concurrent updates every worker serves a *consistent*
/// snapshot (never a torn one), though different shards may observe
/// different epochs.
///
/// # Panics
/// Panics if `trace` and `out` have different lengths.
pub fn classify_sharded_live(
    handle: &ClassifierHandle,
    trace: &[Packet],
    out: &mut [Option<RuleId>],
    threads: usize,
) {
    // nc-lint: allow(no-panic-in-serving, error-taxonomy, reason = "documented length-contract guard (see # Panics); misuse is a caller bug, not runtime input")
    assert_eq!(trace.len(), out.len(), "output slice must match the trace");
    let threads = threads.max(1);
    if threads == 1 || trace.len() < 2 {
        handle.snapshot().classify_batch(trace, out);
        return;
    }
    let shard = trace.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pkts, results) in trace.chunks(shard).zip(out.chunks_mut(shard)) {
            scope.spawn(move || handle.snapshot().classify_batch(pkts, results));
        }
    });
}

/// Time a live serving run: like [`run_engine`], but workers read
/// through the handle and **re-fetch the snapshot between passes**
/// whenever the handle's epoch counter says a newer one exists (one
/// atomic load per pass — the epoch scheme's whole point). Updates
/// applied concurrently by other threads therefore land in the
/// serving path without stopping it; the report records the epoch
/// range the workers actually served from.
pub fn run_live_engine(
    handle: &ClassifierHandle,
    trace: &[Packet],
    cfg: EngineConfig,
) -> (Vec<Option<RuleId>>, LiveEngineReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    let threads = cfg.threads.max(1);
    let mut out = vec![None; trace.len()];
    let min_epoch = AtomicU64::new(u64::MAX);
    let max_epoch = AtomicU64::new(0);
    let observe = |e: u64| {
        min_epoch.fetch_min(e, Ordering::Relaxed);
        max_epoch.fetch_max(e, Ordering::Relaxed);
    };
    let start = std::time::Instant::now();
    if threads == 1 || trace.len() < 2 {
        let mut snap = handle.snapshot();
        for _ in 0..cfg.passes {
            if snap.epoch() != handle.epoch() {
                snap = handle.snapshot();
            }
            observe(snap.epoch());
            snap.classify_batch(trace, &mut out);
        }
    } else {
        let shard = trace.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (pkts, results) in trace.chunks(shard).zip(out.chunks_mut(shard)) {
                let observe = &observe;
                scope.spawn(move || {
                    let mut snap = handle.snapshot();
                    for _ in 0..cfg.passes {
                        if snap.epoch() != handle.epoch() {
                            snap = handle.snapshot();
                        }
                        observe(snap.epoch());
                        snap.classify_batch(pkts, results);
                    }
                });
            }
        });
    }
    let seconds = start.elapsed().as_secs_f64();
    let packets = trace.len() * cfg.passes;
    let report = LiveEngineReport {
        threads,
        packets,
        seconds,
        packets_per_sec: if seconds > 0.0 { packets as f64 / seconds } else { 0.0 },
        min_epoch: min_epoch.load(Ordering::Relaxed),
        max_epoch: max_epoch.load(Ordering::Relaxed),
    };
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::RebuildPolicy;
    use crate::tree::DecisionTree;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
    };

    fn compiled_tree() -> (FlatTree, classbench::RuleSet) {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(7));
        let mut tree = DecisionTree::new(&rules);
        let kids = tree.cut_node(tree.root(), Dim::SrcIp, 8);
        for k in kids {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstPort, 4);
            }
        }
        (FlatTree::compile(&tree), rules)
    }

    #[test]
    fn sharded_results_match_scalar_for_any_thread_count() {
        let (flat, rules) = compiled_tree();
        let trace = generate_trace(&rules, &TraceConfig::new(333).with_seed(8));
        let expect: Vec<_> = trace.iter().map(|p| flat.classify(p)).collect();
        for threads in [1, 2, 3, 4, 8, 64, 1000] {
            let mut out = vec![None; trace.len()];
            classify_sharded(&flat, &trace, &mut out, threads);
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn sharded_handles_degenerate_traces() {
        let (flat, rules) = compiled_tree();
        for len in [0usize, 1, 2] {
            let trace = generate_trace(&rules, &TraceConfig::new(len).with_seed(9));
            let mut out = vec![None; len];
            classify_sharded(&flat, &trace, &mut out, 4);
            for (p, got) in trace.iter().zip(&out) {
                assert_eq!(*got, flat.classify(p));
            }
        }
    }

    #[test]
    fn run_engine_reports_all_passes() {
        let (flat, rules) = compiled_tree();
        let trace = generate_trace(&rules, &TraceConfig::new(100).with_seed(10));
        let (out, report) = run_engine(&flat, &trace, EngineConfig::new(2).with_passes(3));
        assert_eq!(report.threads, 2);
        assert_eq!(report.packets, 300);
        assert!(report.seconds >= 0.0);
        assert!(report.packets_per_sec > 0.0);
        let expect: Vec<_> = trace.iter().map(|p| flat.classify(p)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn config_clamps_to_sane_minimums() {
        let cfg = EngineConfig::new(0).with_passes(0);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.passes, 1);
    }

    fn live_handle() -> (ClassifierHandle, classbench::RuleSet) {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(50));
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstPort, 4);
            }
        }
        (ClassifierHandle::new(tree, RebuildPolicy::default_policy()), rules)
    }

    #[test]
    fn live_sharded_matches_static_engine_when_idle() {
        let (handle, rules) = live_handle();
        let trace = generate_trace(&rules, &TraceConfig::new(257).with_seed(51));
        let flat = handle.with_tree(FlatTree::compile);
        let expect: Vec<_> = trace.iter().map(|p| flat.classify(p)).collect();
        for threads in [1, 2, 5] {
            let mut out = vec![None; trace.len()];
            classify_sharded_live(&handle, &trace, &mut out, threads);
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn live_engine_picks_up_published_updates() {
        let (handle, rules) = live_handle();
        let trace = generate_trace(&rules, &TraceConfig::new(120).with_seed(52));
        // Serve a pass, apply updates, serve again through the same
        // handle: the second run must see the post-update snapshot.
        let (before, r1) = run_live_engine(&handle, &trace, EngineConfig::new(2).with_passes(2));
        assert_eq!(r1.min_epoch, 0);
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let id = handle.insert(classbench::Rule::default_rule(top + 1)).unwrap();
        let (after, r2) = run_live_engine(&handle, &trace, EngineConfig::new(2).with_passes(2));
        assert!(r2.min_epoch >= 1, "workers must serve the new epoch");
        assert!(after.iter().all(|&m| m == Some(id)), "shadowing insert must win everywhere");
        assert_ne!(before, after);
        // And the results equal a from-scratch rebuild of the tree.
        let rebuilt = handle.with_tree(FlatTree::compile);
        let want: Vec<_> = trace.iter().map(|p| rebuilt.classify(p)).collect();
        assert_eq!(after, want);
    }

    #[test]
    fn live_engine_survives_concurrent_churn() {
        let (handle, rules) = live_handle();
        let trace = generate_trace(&rules, &TraceConfig::new(400).with_seed(53));
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        std::thread::scope(|scope| {
            let h = &handle;
            let t = &trace;
            let reader = scope.spawn(move || {
                let mut total = 0usize;
                for _ in 0..20 {
                    let (out, rep) = run_live_engine(h, t, EngineConfig::new(2));
                    total += out.len();
                    assert!(rep.max_epoch >= rep.min_epoch);
                }
                total
            });
            let mut inserted = Vec::new();
            for i in 0..30 {
                inserted.push(h.insert(classbench::Rule::default_rule(top + 1 + i)).unwrap());
                if i % 3 == 0 {
                    h.delete(inserted[inserted.len() - 1]).unwrap();
                }
            }
            assert_eq!(reader.join().unwrap(), 20 * trace.len());
        });
        // After the dust settles, the handle serves exactly a rebuild.
        let rebuilt = handle.with_tree(FlatTree::compile);
        let snap = handle.snapshot();
        for p in &trace {
            assert_eq!(snap.classify(p), rebuilt.classify(p), "post-churn at {p}");
        }
    }
}
