//! Decision-tree substrate for packet classification.
//!
//! The paper's methodology (§5) implements *one* decision-tree data
//! structure and builds HiCuts, HyperCuts, EffiCuts, CutSplit **and**
//! NeuroCuts on top of it, so minor implementation differences cannot
//! bias the comparison. This crate is that shared substrate:
//!
//! * [`NodeSpace`] — a 5-dimensional box, the region of header space a
//!   node is responsible for;
//! * [`DecisionTree`] — an arena-backed tree over a stable rule arena,
//!   supporting the four expansion operations every algorithm in the
//!   workspace is built from: equal-size **cuts** along one dimension,
//!   multi-dimension cuts (HyperCuts), threshold **splits**
//!   (HyperSplit/CutSplit), and rule **partitions** (EffiCuts /
//!   NeuroCuts partition actions);
//! * lookup ([`DecisionTree::classify`]), worst-case classification
//!   time and memory accounting per the paper's Eqs. 1–4
//!   ([`stats`], [`memory`]);
//! * the serving path: a compiled [`FlatTree`] with batched wavefront
//!   lookup and a sharded multi-core engine ([`engine`]);
//! * live serving under updates: an epoch-swapped
//!   [`serve::ClassifierHandle`] that applies §4 incremental updates
//!   and publishes fresh snapshots without pausing readers ([`serve`]);
//! * a correctness validator ([`validate`]) asserting tree lookup ≡
//!   priority-ordered linear scan;
//! * per-level visualisation data for Figures 5 and 6 ([`viz`]);
//! * incremental rule insertion/deletion (§4 "Handling classifier
//!   updates", [`updates`]).

#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod flat;
pub mod memory;
pub mod node;
pub mod replay;
pub mod serve;
pub mod space;
pub mod stats;
pub mod store;
pub mod tree;
pub mod updates;
pub mod validate;
pub mod viz;
pub mod wal;

pub use engine::{
    classify_sharded, classify_sharded_live, run_engine, run_live_engine, EngineConfig,
    EngineReport, LiveEngineReport,
};
pub use faults::{FaultInjector, FaultParseError, FaultPoint, FaultSchedule, FAULT_POINTS};
pub use flat::{FlatTree, StaleTreeError};
pub use memory::MemoryModel;
pub use node::{Node, NodeId, NodeKind, RuleId, RuleSpan};
pub use replay::{find_rebuild_divergence, serve_during, ChurnSchedule};
pub use serve::{
    AdoptError, AdoptReport, ClassifierHandle, HealthReport, RebuildPolicy, RuleSnapshot, Snapshot,
    UpdateStats,
};
pub use space::NodeSpace;
pub use stats::{average_lookup_cost, TreeStats};
pub use store::RuleStore;
pub use tree::DecisionTree;
pub use updates::{UpdateError, UpdateLog};
pub use validate::validate_tree;
pub use viz::LevelProfile;
pub use wal::{WalError, WalReadOutcome, WalRecord, WalWriter};
