//! Deterministic, seeded fault injection for chaos-testing the serving
//! and lifecycle stack.
//!
//! The robustness claims of the update/retrain pipeline — panic-isolated
//! retrains, bounded-retry backoff, admission control, graceful
//! degradation — are only claims until something actually fails. This
//! module makes failure *reproducible*: a [`FaultSchedule`] names which
//! occurrence of each [`FaultPoint`] fires (armed explicitly or drawn
//! from a seed), and a [`FaultInjector`] counts evaluations at runtime
//! so the same schedule replays the same faults every run.
//!
//! Determinism contract: each fault point is evaluated from a single
//! thread (the lifecycle worker owns the retrain-side points, the
//! update thread owns `UpdateBurst` and `WalAppend`), so the per-point
//! evaluation counter advances in a fixed order and `should_fire` is a
//! pure function of the schedule. The counters are atomics only so the
//! injector can be shared (`Arc`) between the worker and the update
//! thread without a lock.
//!
//! The three `*-write`/`*-persist` points are **crash points**: instead
//! of an in-process failure the instrumented site writes a deliberately
//! torn prefix and calls `std::process::abort()` — the deterministic
//! `kill -9` the crash-recovery soak drives from a child process.

use rand::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named place in the serving/lifecycle stack where a fault can be
/// injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Panic inside the background retrain (the `Trainer` call) — the
    /// worker's `catch_unwind` isolation must contain it.
    RetrainPanic,
    /// Stall the retrain past the worker's per-attempt deadline, so the
    /// attempt is discarded as a timeout.
    RetrainSlow,
    /// Corrupt the retrained template before `adopt` — the pre-publish
    /// linear-scan spot check must reject the swap.
    AdoptCorruption,
    /// A burst of extra inserts at one churn step — pressure on the
    /// bounded overlay and its fold-rebuild backpressure.
    UpdateBurst,
    /// Crash mid-append to the write-ahead log: half the record reaches
    /// the disk, then the process aborts. Recovery must truncate the
    /// torn tail and lose nothing that was admitted before it.
    WalAppend,
    /// Crash mid-write of a checkpoint's temporary file, before the
    /// rename-into-place. Recovery must fall back to the previous
    /// generation and replay its WAL chain.
    CheckpointWrite,
    /// Crash after the checkpoint's temporary file is fully written and
    /// synced but *before* the atomic rename publishes it — the rename
    /// either happened or it didn't; recovery must cope with both.
    AdoptPersist,
}

/// Every fault point, in the canonical (index) order.
pub const FAULT_POINTS: [FaultPoint; 7] = [
    FaultPoint::RetrainPanic,
    FaultPoint::RetrainSlow,
    FaultPoint::AdoptCorruption,
    FaultPoint::UpdateBurst,
    FaultPoint::WalAppend,
    FaultPoint::CheckpointWrite,
    FaultPoint::AdoptPersist,
];

impl FaultPoint {
    /// Stable CLI/log name of the point.
    pub const fn name(self) -> &'static str {
        match self {
            FaultPoint::RetrainPanic => "retrain-panic",
            FaultPoint::RetrainSlow => "retrain-slow",
            FaultPoint::AdoptCorruption => "adopt-corruption",
            FaultPoint::UpdateBurst => "update-burst",
            FaultPoint::WalAppend => "wal-append",
            FaultPoint::CheckpointWrite => "checkpoint-write",
            FaultPoint::AdoptPersist => "adopt-persist",
        }
    }

    /// Parse a CLI/log name back into the point.
    pub fn from_name(name: &str) -> Option<FaultPoint> {
        FAULT_POINTS.into_iter().find(|p| p.name() == name)
    }

    const fn index(self) -> usize {
        match self {
            FaultPoint::RetrainPanic => 0,
            FaultPoint::RetrainSlow => 1,
            FaultPoint::AdoptCorruption => 2,
            FaultPoint::UpdateBurst => 3,
            FaultPoint::WalAppend => 4,
            FaultPoint::CheckpointWrite => 5,
            FaultPoint::AdoptPersist => 6,
        }
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a fault-schedule spec failed to parse. Each variant names the
/// offending token so a CLI typo is pinpointed, not just rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultParseError {
    /// A clause had no `@` separator.
    MissingAt {
        /// The clause as written.
        clause: String,
    },
    /// The point name before the `@` is not a known [`FaultPoint`].
    UnknownPoint {
        /// The unrecognised name token.
        token: String,
    },
    /// An occurrence after the `@` is not an unsigned integer.
    BadOccurrence {
        /// The unparsable occurrence token.
        token: String,
        /// The clause it appeared in.
        clause: String,
    },
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultParseError::MissingAt { clause } => {
                write!(f, "fault clause {clause:?} is not point@occ[,occ...]")
            }
            FaultParseError::UnknownPoint { token } => {
                let known: Vec<&str> = FAULT_POINTS.iter().map(|p| p.name()).collect();
                write!(f, "unknown fault point {token:?} (known: {})", known.join(", "))
            }
            FaultParseError::BadOccurrence { token, clause } => {
                write!(f, "bad occurrence {token:?} in clause {clause:?}")
            }
        }
    }
}

impl std::error::Error for FaultParseError {}

/// Which occurrences of each fault point fire: `occurrence` `n` means
/// the `n`-th (0-based) time that point is evaluated. Build one with
/// [`Self::arm`] (explicit), [`Self::seeded`] (reproducibly random), or
/// [`Self::parse`] (CLI spec); hand it to a [`FaultInjector`] to run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Per [`FaultPoint::index`]: sorted, deduplicated firing indices.
    occurrences: [Vec<u64>; 7],
}

impl FaultSchedule {
    /// A schedule that never fires anything.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Arm one occurrence of one point (builder style; duplicates are
    /// collapsed).
    pub fn arm(mut self, point: FaultPoint, occurrence: u64) -> Self {
        let v = &mut self.occurrences[point.index()];
        if let Err(pos) = v.binary_search(&occurrence) {
            v.insert(pos, occurrence);
        }
        self
    }

    /// A reproducibly random schedule: for every fault point, draw
    /// `per_class` distinct occurrence indices. The retrain-side points
    /// (`retrain-panic`, `retrain-slow`, `adopt-corruption`) and the
    /// checkpoint crash points (`checkpoint-write`, `adopt-persist`)
    /// draw from `0..retrain_window` (retrain/checkpoint *attempts*);
    /// the update-path points (`update-burst`, `wal-append`) draw from
    /// `0..update_window` (churn *steps* / WAL appends). The same
    /// `(seed, windows)` always yields the same schedule — that is the
    /// whole point.
    pub fn seeded(seed: u64, per_class: usize, retrain_window: u64, update_window: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::empty();
        for point in FAULT_POINTS {
            let window = match point {
                FaultPoint::UpdateBurst | FaultPoint::WalAppend => update_window,
                _ => retrain_window,
            }
            .max(1);
            let want = (per_class as u64).min(window) as usize;
            while schedule.occurrences[point.index()].len() < want {
                let occ = rng.gen_range(0..window);
                schedule = schedule.arm(point, occ);
            }
        }
        schedule
    }

    /// Parse a CLI spec: `;`-separated `point@occ[,occ...]` clauses,
    /// e.g. `"retrain-panic@0,2;wal-append@5"`. Errors are typed
    /// ([`FaultParseError`]) and name the offending token.
    pub fn parse(spec: &str) -> Result<Self, FaultParseError> {
        let mut schedule = FaultSchedule::empty();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let (name, occs) = clause
                .split_once('@')
                .ok_or_else(|| FaultParseError::MissingAt { clause: clause.to_string() })?;
            let point = FaultPoint::from_name(name.trim())
                .ok_or_else(|| FaultParseError::UnknownPoint { token: name.trim().to_string() })?;
            for occ in occs.split(',') {
                let occ: u64 = occ.trim().parse().map_err(|_| FaultParseError::BadOccurrence {
                    token: occ.trim().to_string(),
                    clause: clause.to_string(),
                })?;
                schedule = schedule.arm(point, occ);
            }
        }
        Ok(schedule)
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.occurrences.iter().all(Vec::is_empty)
    }

    /// Occurrences armed for `point`.
    pub fn armed(&self, point: FaultPoint) -> &[u64] {
        &self.occurrences[point.index()]
    }

    /// Wrap into a runtime injector.
    pub fn injector(self) -> FaultInjector {
        FaultInjector::new(self)
    }
}

impl std::fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for point in FAULT_POINTS {
            let occs = self.armed(point);
            if occs.is_empty() {
                continue;
            }
            if !first {
                f.write_str(";")?;
            }
            first = false;
            let list: Vec<String> = occs.iter().map(u64::to_string).collect();
            write!(f, "{}@{}", point.name(), list.join(","))?;
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// A [`FaultSchedule`] armed for runtime: per-point evaluation counters
/// decide which calls to [`Self::should_fire`] actually fire. Share it
/// (`Arc`) between the lifecycle worker and the update thread; each
/// point must only ever be evaluated from one thread (module docs).
#[derive(Debug)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    evals: [AtomicU64; 7],
    fired: [AtomicU64; 7],
}

impl FaultInjector {
    /// Arm a schedule.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultInjector {
            schedule,
            evals: [const { AtomicU64::new(0) }; 7],
            fired: [const { AtomicU64::new(0) }; 7],
        }
    }

    /// Evaluate `point` once: advances its occurrence counter and
    /// reports whether this occurrence is armed. The caller then
    /// performs the fault (panic, sleep, corruption, burst, crash) —
    /// the injector only decides *when*.
    pub fn should_fire(&self, point: FaultPoint) -> bool {
        let i = point.index();
        let occurrence = self.evals[i].fetch_add(1, Ordering::Relaxed);
        let hit = self.schedule.occurrences[i].binary_search(&occurrence).is_ok();
        if hit {
            self.fired[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// The schedule this injector runs.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Times `point` has been evaluated so far.
    pub fn evaluated(&self, point: FaultPoint) -> u64 {
        self.evals[point.index()].load(Ordering::Relaxed)
    }

    /// Times `point` actually fired so far.
    pub fn fired(&self, point: FaultPoint) -> u64 {
        self.fired[point.index()].load(Ordering::Relaxed)
    }

    /// Faults fired across every point.
    pub fn total_fired(&self) -> u64 {
        FAULT_POINTS.iter().map(|&p| self.fired(p)).sum()
    }

    /// True when every armed occurrence of every point has fired (the
    /// chaos-soak "the schedule ran to completion" check).
    pub fn exhausted(&self) -> bool {
        FAULT_POINTS.iter().all(|&p| self.fired(p) as usize == self.schedule.armed(p).len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_occurrences_fire_exactly_once_each() {
        let inj = FaultSchedule::empty()
            .arm(FaultPoint::RetrainPanic, 1)
            .arm(FaultPoint::RetrainPanic, 3)
            .injector();
        let fired: Vec<bool> = (0..6).map(|_| inj.should_fire(FaultPoint::RetrainPanic)).collect();
        assert_eq!(fired, vec![false, true, false, true, false, false]);
        assert_eq!(inj.fired(FaultPoint::RetrainPanic), 2);
        assert_eq!(inj.evaluated(FaultPoint::RetrainPanic), 6);
        assert!(inj.exhausted());
        assert_eq!(inj.fired(FaultPoint::UpdateBurst), 0, "points are independent");
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_sized() {
        let a = FaultSchedule::seeded(17, 2, 6, 100);
        let b = FaultSchedule::seeded(17, 2, 6, 100);
        assert_eq!(a, b, "same seed, same schedule");
        let c = FaultSchedule::seeded(18, 2, 6, 100);
        assert_ne!(a, c, "different seed, different schedule");
        for point in FAULT_POINTS {
            assert_eq!(a.armed(point).len(), 2, "{point}: two occurrences per class");
            let window = match point {
                FaultPoint::UpdateBurst | FaultPoint::WalAppend => 100,
                _ => 6,
            };
            assert!(a.armed(point).iter().all(|&o| o < window));
        }
        // A window smaller than per_class clamps instead of spinning.
        let tiny = FaultSchedule::seeded(17, 5, 2, 2);
        for point in FAULT_POINTS {
            assert_eq!(tiny.armed(point).len(), 2);
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let s = FaultSchedule::parse("retrain-panic@0,2; wal-append@5").unwrap();
        assert_eq!(s.armed(FaultPoint::RetrainPanic), &[0, 2]);
        assert_eq!(s.armed(FaultPoint::WalAppend), &[5]);
        assert!(s.armed(FaultPoint::RetrainSlow).is_empty());
        let shown = s.to_string();
        assert_eq!(FaultSchedule::parse(&shown).unwrap(), s, "display round-trips");
        assert!(FaultSchedule::parse("").unwrap().is_empty());
        assert_eq!(FaultSchedule::empty().to_string(), "(none)");
    }

    #[test]
    fn parse_errors_name_the_offending_token() {
        match FaultSchedule::parse("no-such-fault@1") {
            Err(FaultParseError::UnknownPoint { token }) => {
                assert_eq!(token, "no-such-fault");
            }
            other => panic!("expected UnknownPoint, got {other:?}"),
        }
        match FaultSchedule::parse("retrain-panic@0;checkpoint-write@x") {
            Err(FaultParseError::BadOccurrence { token, clause }) => {
                assert_eq!(token, "x");
                assert_eq!(clause, "checkpoint-write@x");
            }
            other => panic!("expected BadOccurrence, got {other:?}"),
        }
        match FaultSchedule::parse("retrain-panic") {
            Err(FaultParseError::MissingAt { clause }) => {
                assert_eq!(clause, "retrain-panic");
            }
            other => panic!("expected MissingAt, got {other:?}"),
        }
        // Every error's Display names its token.
        let err = FaultSchedule::parse("wal-apend@1").unwrap_err();
        assert!(err.to_string().contains("wal-apend"), "{err}");
        assert!(err.to_string().contains("wal-append"), "suggests the known names: {err}");
    }

    #[test]
    fn every_point_parses_by_display_name() {
        let mut schedule = FaultSchedule::empty();
        for (i, point) in FAULT_POINTS.into_iter().enumerate() {
            schedule = schedule.arm(point, i as u64);
        }
        let reparsed = FaultSchedule::parse(&schedule.to_string()).unwrap();
        assert_eq!(reparsed, schedule);
    }

    #[test]
    fn names_round_trip() {
        for point in FAULT_POINTS {
            assert_eq!(FaultPoint::from_name(point.name()), Some(point));
        }
        assert_eq!(FaultPoint::from_name("nope"), None);
    }
}
