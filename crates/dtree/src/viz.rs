//! Per-level tree profiles for the paper's Figure 5 and Figure 6
//! visualisations: how many nodes exist at each level and which
//! dimensions the policy cuts there.

use crate::node::NodeKind;
use crate::tree::DecisionTree;
use classbench::{DIMS, NUM_DIMS};
use serde::{Deserialize, Serialize};

/// Statistics for one tree level.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelRow {
    /// Nodes at this level.
    pub nodes: usize,
    /// Leaves at this level.
    pub leaves: usize,
    /// How many nodes at this level cut/split each dimension.
    pub cut_dims: [usize; NUM_DIMS],
    /// Partition nodes at this level.
    pub partitions: usize,
}

/// Per-level profile of a tree (x-axis of Figure 5: tree level; y-axis:
/// node count; colours: cut-dimension mix).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelProfile {
    /// One row per level, root first.
    pub levels: Vec<LevelRow>,
}

impl LevelProfile {
    /// Compute the profile for `tree`.
    pub fn compute(tree: &DecisionTree) -> LevelProfile {
        let mut levels: Vec<LevelRow> = Vec::new();
        for node in tree.nodes() {
            if node.depth >= levels.len() {
                levels.resize(node.depth + 1, LevelRow::default());
            }
            let row = &mut levels[node.depth];
            row.nodes += 1;
            match &node.kind {
                NodeKind::Leaf => row.leaves += 1,
                NodeKind::Cut { dim, .. } => row.cut_dims[dim.index()] += 1,
                NodeKind::DenseCut { dim, .. } => row.cut_dims[dim.index()] += 1,
                NodeKind::Split { dim, .. } => row.cut_dims[dim.index()] += 1,
                NodeKind::MultiCut { dims, .. } => {
                    for (dim, _) in dims {
                        row.cut_dims[dim.index()] += 1;
                    }
                }
                NodeKind::Partition { .. } => row.partitions += 1,
            }
        }
        LevelProfile { levels }
    }

    /// Number of levels (max depth + 1).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Widest level's node count.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(|l| l.nodes).max().unwrap_or(0)
    }

    /// Total cut counts per dimension over the whole tree — the
    /// "distribution of cut dimensions" colouring in Figure 5.
    pub fn total_cut_dims(&self) -> [usize; NUM_DIMS] {
        let mut total = [0usize; NUM_DIMS];
        for row in &self.levels {
            for (t, c) in total.iter_mut().zip(row.cut_dims.iter()) {
                *t += c;
            }
        }
        total
    }

    /// Render an ASCII bar chart: one row per level with a width-scaled
    /// bar and the dominant cut dimension, the textual equivalent of
    /// Figure 5's histograms.
    pub fn render_ascii(&self, max_bar: usize) -> String {
        let peak = self.max_width().max(1);
        let mut out = String::new();
        for (depth, row) in self.levels.iter().enumerate() {
            let bar_len = (row.nodes * max_bar).div_ceil(peak).max(1);
            let dominant = row
                .cut_dims
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .filter(|&(_, &c)| c > 0)
                .map(|(i, _)| DIMS[i].name())
                .unwrap_or(if row.partitions > 0 { "Partition" } else { "-" });
            out.push_str(&format!(
                "L{depth:<3} {:>7} |{}| {}\n",
                row.nodes,
                "#".repeat(bar_len),
                dominant
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{Dim, DimRange, Rule, RuleSet};

    fn tree() -> DecisionTree {
        let mut a = Rule::default_rule(1);
        a.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        let rs = RuleSet::new(vec![a, Rule::default_rule(0)]);
        DecisionTree::new(&rs)
    }

    #[test]
    fn single_leaf_profile() {
        let t = tree();
        let p = LevelProfile::compute(&t);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.levels[0].nodes, 1);
        assert_eq!(p.levels[0].leaves, 1);
        assert_eq!(p.total_cut_dims(), [0; NUM_DIMS]);
    }

    #[test]
    fn cut_dims_are_recorded_per_level() {
        let mut t = tree();
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        t.cut_node(kids[0], Dim::Proto, 2);
        let p = LevelProfile::compute(&t);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.levels[0].cut_dims[Dim::DstPort.index()], 1);
        assert_eq!(p.levels[1].cut_dims[Dim::Proto.index()], 1);
        assert_eq!(p.levels[1].nodes, 4);
        assert_eq!(p.levels[1].leaves, 3);
        assert_eq!(p.levels[2].nodes, 2);
        assert_eq!(p.max_width(), 4);
        let totals = p.total_cut_dims();
        assert_eq!(totals[Dim::DstPort.index()], 1);
        assert_eq!(totals[Dim::Proto.index()], 1);
    }

    #[test]
    fn partition_nodes_counted() {
        let mut t = tree();
        t.partition_node(t.root(), vec![vec![0], vec![1]]);
        let p = LevelProfile::compute(&t);
        assert_eq!(p.levels[0].partitions, 1);
        assert_eq!(p.levels[1].nodes, 2);
    }

    #[test]
    fn ascii_render_has_one_row_per_level() {
        let mut t = tree();
        t.cut_node(t.root(), Dim::DstPort, 4);
        let p = LevelProfile::compute(&t);
        let s = p.render_ascii(40);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("DstPort"));
        assert!(s.starts_with("L0"));
    }
}
