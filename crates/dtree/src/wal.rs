//! Crash-consistent write-ahead logging for the live classifier.
//!
//! Every admitted mutation of a [`crate::ClassifierHandle`] — insert,
//! delete, epoch-adopt, forced rebuild — is appended here as one
//! checksummed, length-prefixed record *before* it touches the serving
//! state, so a `kill -9` at any instant loses nothing that was admitted:
//! recovery (`core::persist`) replays the log suffix on top of the
//! newest checkpoint and lands bit-identically on the pre-crash state.
//!
//! # Record format
//!
//! A WAL file is a 16-byte header followed by back-to-back records:
//!
//! ```text
//! header:  magic "NCWALv1\n" (8 bytes) | start_lsn u64
//! record:  len u32 | body | crc32 u32       (crc over the body)
//! body:    lsn u64 | kind u8 | payload
//! ```
//!
//! All integers are big-endian (matching the `Packet::to_wire` wire
//! convention). The three framing fields are each a tamper/torn-tail
//! tripwire with a distinct failure mode:
//!
//! * the **length prefix** detects a record cut short by a crash
//!   mid-write ([`WalError::TornRecord`]);
//! * the **CRC-32** (IEEE, hand-rolled, std-only) detects flipped or
//!   partially written bytes ([`WalError::CorruptRecord`]);
//! * the **LSN** must increase by exactly one per record, starting at
//!   the header's `start_lsn`, so reordered or spliced records are
//!   detected ([`WalError::LsnMismatch`]) rather than silently replayed
//!   in the wrong order.
//!
//! Torn and corrupt records can only legitimately appear at the *tail*
//! (a crash interrupts at most one in-flight append), so the reader
//! classifies them as a truncatable [`WalReadOutcome::tail`] with the
//! byte length of the valid prefix; structural violations (bad magic,
//! LSN misorder, an undecodable payload behind a valid CRC) are hard
//! typed errors — never a panic, never a silently wrong replay.
//!
//! # Fsync policy
//!
//! Each append issues one `write` syscall (the record is visible to the
//! OS page cache immediately, which is all `kill -9` durability needs —
//! the page cache outlives the process), while `fsync` is batched every
//! [`WalWriter::sync_every`] records to keep the update path fast:
//! batching only trades the tail of the current batch against *power
//! loss*, not process death. Checkpoints fsync everything.

use crate::faults::{FaultInjector, FaultPoint};
use crate::node::RuleId;
use classbench::{DimRange, Rule, NUM_DIMS};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic: the first 8 bytes of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"NCWALv1\n";

/// Header length: magic + `start_lsn`.
pub const WAL_HEADER_LEN: usize = 16;

/// Smallest legal record body (`lsn u64` + `kind u8`).
const MIN_BODY: u32 = 9;

/// Largest legal record body. Real records are ~100 bytes; a length
/// prefix past this bound is treated as framing corruption instead of
/// being trusted with an allocation.
const MAX_BODY: u32 = 4096;

/// CRC-32 (IEEE 802.3 polynomial, reflected), computed bitwise so the
/// serving-path no-indexing contract holds without a lookup table. The
/// WAL appends off the lookup hot path, so the byte-at-a-time cost is
/// irrelevant next to the `write` syscall it frames.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c ^= b as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
    }
    !c
}

/// One logged mutation, in admission order. Each record corresponds to
/// exactly one published epoch, so a recovered handle's epoch is the
/// checkpoint epoch plus the number of replayed records.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An admitted insert. The arena id the handle assigned is logged
    /// too: id assignment is deterministic (append-order), so replay
    /// re-derives the same id and the match is verified, turning any
    /// drift into a typed recovery error instead of silent corruption.
    Insert {
        /// Arena id the insert was assigned.
        id: RuleId,
        /// The inserted rule.
        rule: Rule,
    },
    /// An admitted delete of an active rule.
    Delete {
        /// Arena id of the deleted rule.
        id: RuleId,
    },
    /// A forced fold-overlay recompile (`force_rebuild`): publishes one
    /// epoch without changing the logical rule set.
    Rebuild,
    /// A retrained tree adopted through the epoch swap. Replayed as a
    /// rebuild: classification-identical by the adopt contract; the
    /// adopted *shape* becomes durable when its checkpoint lands (the
    /// checkpoint also pins the train seed for provenance).
    Adopt,
}

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_REBUILD: u8 = 3;
const KIND_ADOPT: u8 = 4;

/// Why a WAL operation failed or a file could not be fully read.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O failure (open, write, sync, rename).
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`] — it is not a WAL.
    BadMagic,
    /// The file ends inside the 16-byte header (crash during create).
    TornHeader {
        /// Bytes actually present.
        have: usize,
    },
    /// The file ends inside a record — the classic torn tail of an
    /// append interrupted by a crash. Truncatable.
    TornRecord {
        /// Byte offset of the torn record.
        offset: u64,
        /// Bytes present from that offset.
        have: usize,
        /// Bytes a complete record would need.
        need: usize,
    },
    /// A record whose checksum (or length prefix) does not hold —
    /// partially flushed or damaged bytes. Truncatable when last.
    CorruptRecord {
        /// Byte offset of the corrupt record.
        offset: u64,
    },
    /// A record carrying the wrong sequence number: records were
    /// reordered, spliced from another log, or lost mid-file. Never
    /// truncated away — replaying around it would be silently wrong.
    LsnMismatch {
        /// Byte offset of the offending record.
        offset: u64,
        /// The LSN the chain required.
        expected: u64,
        /// The LSN the record carries.
        got: u64,
    },
    /// The record's CRC holds but its payload does not decode (unknown
    /// kind byte or trailing bytes) — a format/version violation, not
    /// disk damage, so it is a hard error rather than a truncation.
    MalformedPayload {
        /// Byte offset of the offending record.
        offset: u64,
        /// The kind byte it carried.
        kind: u8,
    },
}

impl WalError {
    /// The I/O error class to surface through `UpdateError::WalAppend`
    /// (non-I/O variants map to `InvalidData`).
    pub fn io_kind(&self) -> std::io::ErrorKind {
        match self {
            WalError::Io(e) => e.kind(),
            _ => std::io::ErrorKind::InvalidData,
        }
    }

    /// True for the failure modes a crash legitimately leaves at the
    /// tail of the newest file — recovery truncates these (with the
    /// error recorded) instead of refusing to start.
    pub fn is_torn_tail(&self) -> bool {
        matches!(
            self,
            WalError::TornHeader { .. }
                | WalError::TornRecord { .. }
                | WalError::CorruptRecord { .. }
        )
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::BadMagic => f.write_str("not a wal file (bad magic)"),
            WalError::TornHeader { have } => {
                write!(f, "torn wal header: {have} of {WAL_HEADER_LEN} bytes")
            }
            WalError::TornRecord { offset, have, need } => {
                write!(f, "torn wal record at byte {offset}: {have} of {need} bytes")
            }
            WalError::CorruptRecord { offset } => {
                write!(f, "corrupt wal record at byte {offset} (checksum/framing)")
            }
            WalError::LsnMismatch { offset, expected, got } => {
                write!(f, "wal record at byte {offset} carries lsn {got}, expected {expected} (reordered or spliced)")
            }
            WalError::MalformedPayload { offset, kind } => {
                write!(f, "wal record at byte {offset} (kind {kind}) has an undecodable payload")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// A checked big-endian reader over a byte slice: every take is
/// bounds-verified, so parsing arbitrary (torn, corrupt, adversarial)
/// bytes can never panic or index out of range.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn pos(&self) -> usize {
        self.pos
    }

    fn done(&self) -> bool {
        self.remaining() == 0
    }

    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let end = self.pos.checked_add(N)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        let mut out = [0u8; N];
        out.copy_from_slice(chunk);
        Some(out)
    }

    fn take_slice(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(chunk)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|[b]| b)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_be_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_be_bytes)
    }

    fn i32(&mut self) -> Option<i32> {
        self.take::<4>().map(i32::from_be_bytes)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn encode_payload(out: &mut Vec<u8>, record: &WalRecord) {
    match record {
        WalRecord::Insert { id, rule } => {
            put_u64(out, *id as u64);
            for r in rule.ranges.iter() {
                put_u64(out, r.lo);
                put_u64(out, r.hi);
            }
            out.extend_from_slice(&rule.priority.to_be_bytes());
        }
        WalRecord::Delete { id } => put_u64(out, *id as u64),
        WalRecord::Rebuild | WalRecord::Adopt => {}
    }
}

fn record_kind(record: &WalRecord) -> u8 {
    match record {
        WalRecord::Insert { .. } => KIND_INSERT,
        WalRecord::Delete { .. } => KIND_DELETE,
        WalRecord::Rebuild => KIND_REBUILD,
        WalRecord::Adopt => KIND_ADOPT,
    }
}

fn decode_payload(kind: u8, cur: &mut Cursor<'_>) -> Option<WalRecord> {
    let record = match kind {
        KIND_INSERT => {
            let id = usize::try_from(cur.u64()?).ok()?;
            let mut ranges = [DimRange { lo: 0, hi: 0 }; NUM_DIMS];
            for r in ranges.iter_mut() {
                *r = DimRange { lo: cur.u64()?, hi: cur.u64()? };
            }
            let priority = cur.i32()?;
            WalRecord::Insert { id, rule: Rule { ranges, priority } }
        }
        KIND_DELETE => WalRecord::Delete { id: usize::try_from(cur.u64()?).ok()? },
        KIND_REBUILD => WalRecord::Rebuild,
        KIND_ADOPT => WalRecord::Adopt,
        _ => return None,
    };
    if cur.done() {
        Some(record)
    } else {
        None
    }
}

/// Encode one record (length prefix + body + CRC) as it is laid out on
/// disk. Exposed so the corruption proptests can frame records exactly
/// the way the writer does.
pub fn encode_record(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(128);
    put_u64(&mut body, lsn);
    body.push(record_kind(record));
    encode_payload(&mut body, record);
    let mut out = Vec::with_capacity(body.len() + 8);
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    put_u32(&mut out, crc32(&body));
    out
}

/// What [`read_wal`] found: the complete, verified record prefix plus
/// an optional truncatable tail error.
#[derive(Debug)]
pub struct WalReadOutcome {
    /// The header's first sequence number.
    pub start_lsn: u64,
    /// Every verified record, in LSN order.
    pub records: Vec<WalRecord>,
    /// The LSN the next appended record must carry.
    pub next_lsn: u64,
    /// Byte length of the valid prefix (header + verified records) —
    /// what recovery truncates the file to when `tail` is set.
    pub valid_len: u64,
    /// A torn/corrupt tail, when the file does not end cleanly on a
    /// record boundary. `records` holds everything before it.
    pub tail: Option<WalError>,
}

/// Read and verify a WAL file. See [`read_wal_bytes`].
pub fn read_wal(path: &Path) -> Result<WalReadOutcome, WalError> {
    let bytes = std::fs::read(path).map_err(WalError::Io)?;
    read_wal_bytes(&bytes)
}

/// Read and verify an in-memory WAL image. Torn/corrupt tails come
/// back as `Ok` with [`WalReadOutcome::tail`] set (recovery truncates
/// them); structural violations — wrong magic, LSN misorder, an
/// undecodable payload behind a valid CRC — are `Err`. Never panics,
/// whatever the bytes.
pub fn read_wal_bytes(bytes: &[u8]) -> Result<WalReadOutcome, WalError> {
    let mut cur = Cursor::new(bytes);
    let Some(magic) = cur.take::<8>() else {
        return Ok(WalReadOutcome {
            start_lsn: 0,
            records: Vec::new(),
            next_lsn: 0,
            valid_len: 0,
            tail: Some(WalError::TornHeader { have: bytes.len() }),
        });
    };
    if magic != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let Some(start_lsn) = cur.u64() else {
        return Ok(WalReadOutcome {
            start_lsn: 0,
            records: Vec::new(),
            next_lsn: 0,
            valid_len: 0,
            tail: Some(WalError::TornHeader { have: bytes.len() }),
        });
    };

    let mut records = Vec::new();
    let mut lsn = start_lsn;
    let mut valid_len = WAL_HEADER_LEN as u64;
    let mut tail = None;
    while !cur.done() {
        let offset = cur.pos() as u64;
        let have = cur.remaining();
        let Some(len) = cur.u32() else {
            tail = Some(WalError::TornRecord { offset, have, need: 8 + MIN_BODY as usize });
            break;
        };
        if !(MIN_BODY..=MAX_BODY).contains(&len) {
            tail = Some(WalError::CorruptRecord { offset });
            break;
        }
        let need = 8 + len as usize;
        let Some(body) = cur.take_slice(len as usize) else {
            tail = Some(WalError::TornRecord { offset, have, need });
            break;
        };
        let Some(crc) = cur.u32() else {
            tail = Some(WalError::TornRecord { offset, have, need });
            break;
        };
        if crc32(body) != crc {
            tail = Some(WalError::CorruptRecord { offset });
            break;
        }
        let mut b = Cursor::new(body);
        let (Some(got_lsn), Some(kind)) = (b.u64(), b.u8()) else {
            // Unreachable given MIN_BODY, but parse defensively.
            return Err(WalError::MalformedPayload { offset, kind: 0 });
        };
        if got_lsn != lsn {
            return Err(WalError::LsnMismatch { offset, expected: lsn, got: got_lsn });
        }
        let Some(record) = decode_payload(kind, &mut b) else {
            return Err(WalError::MalformedPayload { offset, kind });
        };
        records.push(record);
        lsn = lsn.wrapping_add(1);
        valid_len = cur.pos() as u64;
    }
    Ok(WalReadOutcome { start_lsn, records, next_lsn: lsn, valid_len, tail })
}

/// Cut a WAL file back to its verified prefix (recovery's torn-tail
/// repair; `valid_len` comes from [`WalReadOutcome::valid_len`]).
pub fn truncate_wal(path: &Path, valid_len: u64) -> Result<(), WalError> {
    let file = OpenOptions::new().write(true).open(path).map_err(WalError::Io)?;
    file.set_len(valid_len).map_err(WalError::Io)?;
    file.sync_all().map_err(WalError::Io)
}

/// The append half: owns one open WAL file and its sequence counter.
/// Held by the `ClassifierHandle` behind its state lock, so appends are
/// naturally serialised with the mutations they precede.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    appended: u64,
    since_sync: usize,
    sync_every: usize,
    faults: Option<Arc<FaultInjector>>,
}

impl WalWriter {
    /// Create a fresh WAL file (refusing to overwrite — generations
    /// are never reused) whose first record will carry `start_lsn`,
    /// fsyncing every `sync_every` appends.
    pub fn create(path: &Path, start_lsn: u64, sync_every: usize) -> Result<WalWriter, WalError> {
        let mut file =
            OpenOptions::new().write(true).create_new(true).open(path).map_err(WalError::Io)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN);
        header.extend_from_slice(&WAL_MAGIC);
        put_u64(&mut header, start_lsn);
        file.write_all(&header).map_err(WalError::Io)?;
        file.sync_all().map_err(WalError::Io)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_lsn: start_lsn,
            appended: 0,
            since_sync: 0,
            sync_every: sync_every.max(1),
            faults: None,
        })
    }

    /// Arm a fault injector: an armed `wal-append` occurrence makes the
    /// next append write only half its record and then abort the
    /// process — the deterministic `kill -9`-mid-write the crash soak
    /// drives from a child process.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> WalWriter {
        self.faults = Some(faults);
        self
    }

    /// The LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Records appended since this writer was created — the "WAL length
    /// since the last checkpoint" durability signal, because every
    /// checkpoint rotates in a fresh writer.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The fsync batch size this writer was created with.
    pub fn sync_every(&self) -> usize {
        self.sync_every
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (see the module docs for the fsync policy).
    /// Returns the record's LSN. On error nothing is considered
    /// durable and the caller must refuse the mutation.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let bytes = encode_record(lsn, record);
        if let Some(f) = &self.faults {
            if f.should_fire(FaultPoint::WalAppend) {
                // The injected crash: half the record reaches the disk,
                // then the process dies without unwinding — exactly the
                // torn tail recovery must truncate.
                if let Some(prefix) = bytes.get(..bytes.len() / 2) {
                    let _ = self.file.write_all(prefix);
                }
                let _ = self.file.sync_all();
                std::process::abort();
            }
        }
        self.file.write_all(&bytes).map_err(WalError::Io)?;
        self.next_lsn = lsn.wrapping_add(1);
        self.appended += 1;
        self.since_sync += 1;
        if self.since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// Flush the batched fsync now (checkpoints call this before the
    /// old generation is retired).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(WalError::Io)?;
        self.since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ncwal-test-{}-{tag}-{n}.ncwal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        let mut rule = Rule::default_rule(17);
        rule.ranges[0] = DimRange { lo: 5, hi: 4096 };
        vec![
            WalRecord::Insert { id: 3, rule },
            WalRecord::Delete { id: 1 },
            WalRecord::Rebuild,
            WalRecord::Adopt,
            WalRecord::Insert { id: 4, rule: Rule::default_rule(-9) },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = tmp_wal("roundtrip");
        let mut w = WalWriter::create(&path, 7, 2).expect("create");
        let records = sample_records();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(w.append(r).expect("append"), 7 + i as u64);
        }
        w.sync().expect("sync");
        assert_eq!(w.appended(), records.len() as u64);
        assert_eq!(w.next_lsn(), 7 + records.len() as u64);

        let out = read_wal(&path).expect("read");
        assert_eq!(out.start_lsn, 7);
        assert_eq!(out.records, records);
        assert_eq!(out.next_lsn, w.next_lsn());
        assert!(out.tail.is_none());
        assert_eq!(out.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let path = tmp_wal("exists");
        let _w = WalWriter::create(&path, 0, 1).expect("create");
        assert!(matches!(WalWriter::create(&path, 0, 1), Err(WalError::Io(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_reported_and_truncatable() {
        let path = tmp_wal("torn");
        let mut w = WalWriter::create(&path, 0, 1).expect("create");
        for r in sample_records() {
            w.append(&r).expect("append");
        }
        drop(w);
        // Tear the last record in half.
        let full = std::fs::read(&path).unwrap();
        let out = read_wal_bytes(&full).expect("clean read");
        let torn_at = out.valid_len as usize - 5;
        std::fs::write(&path, &full[..torn_at]).unwrap();

        let torn = read_wal(&path).expect("torn tails are recoverable");
        assert_eq!(torn.records.len(), sample_records().len() - 1);
        assert!(matches!(torn.tail, Some(WalError::TornRecord { .. })), "{:?}", torn.tail);
        assert!(torn.tail.as_ref().unwrap().is_torn_tail());

        truncate_wal(&path, torn.valid_len).expect("truncate");
        let clean = read_wal(&path).expect("read after truncate");
        assert!(clean.tail.is_none());
        assert_eq!(clean.records, torn.records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_byte_is_detected_not_replayed() {
        let path = tmp_wal("corrupt");
        let mut w = WalWriter::create(&path, 0, 1).expect("create");
        for r in sample_records() {
            w.append(&r).expect("append");
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = WAL_HEADER_LEN + 20; // inside the first record's payload
        bytes[mid] ^= 0x40;
        let out = read_wal_bytes(&bytes).expect("corruption is a tail, not a crash");
        assert!(matches!(out.tail, Some(WalError::CorruptRecord { .. })), "{:?}", out.tail);
        assert!(out.records.is_empty(), "nothing before the corrupt record survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reordered_records_are_a_hard_error() {
        let a = encode_record(0, &WalRecord::Delete { id: 1 });
        let b = encode_record(1, &WalRecord::Delete { id: 2 });
        let mut file = Vec::new();
        file.extend_from_slice(&WAL_MAGIC);
        file.extend_from_slice(&0u64.to_be_bytes());
        file.extend_from_slice(&b);
        file.extend_from_slice(&a);
        match read_wal_bytes(&file) {
            Err(WalError::LsnMismatch { expected: 0, got: 1, .. }) => {}
            other => panic!("expected LsnMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_torn_header() {
        assert!(matches!(read_wal_bytes(b"NOTAWAL!rest"), Err(WalError::BadMagic)));
        let out = read_wal_bytes(b"NCWALv1\n\x00\x00").expect("short header is a tail");
        assert!(matches!(out.tail, Some(WalError::TornHeader { have: 10 })));
        assert_eq!(out.valid_len, 0);
        let out = read_wal_bytes(b"").expect("empty file is a torn header");
        assert!(matches!(out.tail, Some(WalError::TornHeader { have: 0 })));
    }

    #[test]
    fn unknown_kind_behind_valid_crc_is_malformed() {
        let mut body = Vec::new();
        body.extend_from_slice(&0u64.to_be_bytes());
        body.push(99); // unknown kind
        let mut file = Vec::new();
        file.extend_from_slice(&WAL_MAGIC);
        file.extend_from_slice(&0u64.to_be_bytes());
        file.extend_from_slice(&(body.len() as u32).to_be_bytes());
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc32(&body).to_be_bytes());
        match read_wal_bytes(&file) {
            Err(WalError::MalformedPayload { kind: 99, .. }) => {}
            other => panic!("expected MalformedPayload, got {other:?}"),
        }
    }

    #[test]
    fn lsn_chains_across_generations() {
        // Generation n+1 starts where generation n left off, so a
        // recovery chain can verify continuity across files.
        let p0 = tmp_wal("chain0");
        let p1 = tmp_wal("chain1");
        let mut w0 = WalWriter::create(&p0, 0, 8).expect("create");
        w0.append(&WalRecord::Rebuild).expect("append");
        w0.append(&WalRecord::Delete { id: 0 }).expect("append");
        w0.sync().expect("sync");
        let mut w1 = WalWriter::create(&p1, w0.next_lsn(), 8).expect("create");
        w1.append(&WalRecord::Adopt).expect("append");
        w1.sync().expect("sync");
        let o0 = read_wal(&p0).expect("read gen 0");
        let o1 = read_wal(&p1).expect("read gen 1");
        assert_eq!(o0.next_lsn, o1.start_lsn);
        assert_eq!(o1.next_lsn, 3);
        let _ = std::fs::remove_file(&p0);
        let _ = std::fs::remove_file(&p1);
    }
}
