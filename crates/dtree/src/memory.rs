//! The memory model behind the paper's "bytes per rule" metric.
//!
//! Every algorithm in the workspace is measured with the same model, so
//! ratios between algorithms are meaningful even though absolute bytes
//! differ from the authors' C++ structures. The accounting follows the
//! conventions of the HyperCuts/EffiCuts papers:
//!
//! * an **internal node** costs a fixed header plus one child pointer
//!   per child (cuts with many children are therefore expensive — this
//!   is what the HiCuts space factor `spfac` limits);
//! * a **leaf** costs the header plus one rule reference per stored
//!   rule, so **rule replication is charged at every leaf** a rule
//!   reaches — the effect EffiCuts' partitioning exists to avoid;
//! * each distinct rule costs a fixed number of bytes once, in the rule
//!   table shared by the whole classifier.

use crate::node::NodeKind;
use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};

/// Byte costs used by [`DecisionTree`] space accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Fixed per-node header (kind tag, bounds, counts).
    pub node_header: usize,
    /// Per-child pointer at internal nodes.
    pub child_ptr: usize,
    /// Per-rule reference at leaves.
    pub leaf_rule_ref: usize,
    /// Per-rule cost in the shared rule table (5 ranges + priority).
    pub rule_table_entry: usize,
}

impl Default for MemoryModel {
    fn default() -> Self {
        // 16-byte header; 4-byte child pointers; 8-byte leaf entries
        // (rule pointer + priority cache); 36-byte rules
        // (4+4+2+2+1 bytes x2 bounds, padded, + priority).
        MemoryModel { node_header: 16, child_ptr: 4, leaf_rule_ref: 8, rule_table_entry: 36 }
    }
}

impl MemoryModel {
    /// Bytes charged to a single node (excluding the shared rule table).
    pub fn node_bytes(&self, kind: &NodeKind, num_rules: usize) -> usize {
        match kind {
            NodeKind::Leaf => self.node_header + self.leaf_rule_ref * num_rules,
            // Equi-dense cuts must store their interior boundaries (4
            // bytes each) on top of the child pointers.
            NodeKind::DenseCut { bounds, children, .. } => {
                self.node_header
                    + self.child_ptr * children.len()
                    + 4 * bounds.len().saturating_sub(2)
            }
            other => self.node_header + self.child_ptr * other.children().len(),
        }
    }

    /// Total bytes of a tree: all nodes plus the shared rule table.
    pub fn tree_bytes(&self, tree: &DecisionTree) -> usize {
        let nodes: usize =
            tree.nodes().iter().map(|n| self.node_bytes(&n.kind, n.num_rules())).sum();
        nodes + self.rule_table_entry * tree.num_active_rules()
    }

    /// The paper's space metric: total bytes divided by active rules.
    pub fn bytes_per_rule(&self, tree: &DecisionTree) -> f64 {
        let rules = tree.num_active_rules().max(1);
        self.tree_bytes(tree) as f64 / rules as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{Dim, Rule, RuleSet};

    fn three_rule_tree() -> DecisionTree {
        let rules = RuleSet::from_ordered(vec![
            Rule::default_rule(0),
            Rule::default_rule(0),
            Rule::default_rule(0),
        ]);
        DecisionTree::new(&rules)
    }

    #[test]
    fn leaf_cost_scales_with_rules() {
        let m = MemoryModel::default();
        assert_eq!(m.node_bytes(&NodeKind::Leaf, 0), 16);
        assert_eq!(m.node_bytes(&NodeKind::Leaf, 10), 16 + 80);
    }

    #[test]
    fn internal_cost_scales_with_children() {
        let m = MemoryModel::default();
        let kind = NodeKind::Cut { dim: Dim::SrcIp, ncuts: 32, children: (0..32).collect() };
        // Rules listed at internal nodes are not charged: they live in
        // the children after expansion.
        assert_eq!(m.node_bytes(&kind, 99), 16 + 32 * 4);
    }

    #[test]
    fn tree_bytes_single_leaf() {
        let t = three_rule_tree();
        let m = MemoryModel::default();
        // One leaf with 3 rules + 3 rule-table entries.
        assert_eq!(m.tree_bytes(&t), 16 + 3 * 8 + 3 * 36);
        assert!((m.bytes_per_rule(&t) - (16.0 + 24.0 + 108.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn replication_is_charged_per_leaf() {
        let mut t = three_rule_tree();
        let m = MemoryModel::default();
        let before = m.tree_bytes(&t);
        // All rules are full wildcards: a cut replicates every rule into
        // both children, adding a whole extra leaf's worth of refs.
        t.cut_node(t.root(), Dim::SrcIp, 2);
        let after = m.tree_bytes(&t);
        // Root became internal (16 + 2*4), two leaves of 3 rules each.
        assert_eq!(after, (16 + 8) + 2 * (16 + 24) + 3 * 36);
        assert!(after > before);
    }

    #[test]
    fn bytes_per_rule_guard_against_empty() {
        let rules = RuleSet::from_ordered(vec![]);
        let t = DecisionTree::new(&rules);
        let m = MemoryModel::default();
        assert!(m.bytes_per_rule(&t).is_finite());
    }
}
