//! The shared, structure-of-arrays rule store behind [`crate::DecisionTree`].
//!
//! Episode-driven training builds thousands of trees over the *same*
//! rule set; before this store existed every `DecisionTree::new` deep-
//! cloned the full rule `Vec`. A [`RuleStore`] is built once, wrapped
//! in an [`Arc`](std::sync::Arc), and shared by every tree —
//! construction touches only the per-tree state (node arena, rule-id
//! pool, active flags).
//!
//! Alongside the array-of-structs rules (kept for by-reference
//! accessors and serialisation), the store maintains **per-dimension
//! `lo`/`hi` columns in rule-id order** — the same layout PR 2 gave the
//! serving-side [`crate::FlatTree`]. The builder's hot loops (child
//! assignment, covered-rule truncation, separability scans) walk one
//! dimension's column sequentially instead of striding across 88-byte
//! `Rule` structs, and the intersection test is branch-free.

use classbench::{Rule, RuleSet, NUM_DIMS};

use crate::node::RuleId;
use crate::space::NodeSpace;

/// Immutable-by-sharing rule storage: array-of-structs rules plus
/// per-dimension bound columns, indexed by [`RuleId`] (priority order
/// when built from a [`RuleSet`]).
///
/// Mutation (appending rules for incremental updates) goes through
/// `Arc::make_mut` in the tree, so a store shared with live episodes is
/// copied once and never written behind their backs.
#[derive(Debug, Clone, Default)]
pub struct RuleStore {
    rules: Vec<Rule>,
    /// `lo[d][r]` = rule `r`'s inclusive lower bound in dimension `d`.
    lo: [Vec<u64>; NUM_DIMS],
    /// `hi[d][r]` = rule `r`'s exclusive upper bound in dimension `d`.
    hi: [Vec<u64>; NUM_DIMS],
}

impl RuleStore {
    /// Build a store from a rule set (rule ids = priority-order
    /// indices, matching [`crate::DecisionTree::new`]).
    pub fn from_ruleset(rules: &RuleSet) -> Self {
        Self::from_rules(rules.rules().to_vec())
    }

    /// Build a store from already-ordered rules.
    // nc-lint: allow(no-panic-in-serving, reason = "d < NUM_DIMS over fixed column arrays; r < len by the loop bound")
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        let mut store = RuleStore {
            lo: std::array::from_fn(|_| Vec::with_capacity(rules.len())),
            hi: std::array::from_fn(|_| Vec::with_capacity(rules.len())),
            rules,
        };
        for r in 0..store.rules.len() {
            for d in 0..NUM_DIMS {
                store.lo[d].push(store.rules[r].ranges[d].lo);
                store.hi[d].push(store.rules[r].ranges[d].hi);
            }
        }
        store
    }

    /// Number of rules (including any later deactivated by updates —
    /// activity is per-tree state).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the store holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All rules, in id order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Borrow one rule.
    // nc-lint: allow(no-panic-in-serving, reason = "arena accessor: RuleIds are dense indices minted by this store")
    #[inline]
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id]
    }

    /// Rule `id`'s half-open projection onto dimension column `d`.
    // nc-lint: allow(no-panic-in-serving, reason = "d < NUM_DIMS and id < len per the SoA layout contract")
    #[inline]
    pub fn proj(&self, d: usize, id: RuleId) -> (u64, u64) {
        (self.lo[d][id], self.hi[d][id])
    }

    /// Append a rule (incremental updates). Callers own the id ordering
    /// contract: new rules get the next id regardless of priority.
    // nc-lint: allow(no-panic-in-serving, reason = "d < NUM_DIMS over the fixed column arrays")
    pub fn push(&mut self, rule: Rule) -> RuleId {
        let id = self.rules.len();
        for d in 0..NUM_DIMS {
            self.lo[d].push(rule.ranges[d].lo);
            self.hi[d].push(rule.ranges[d].hi);
        }
        self.rules.push(rule);
        id
    }

    /// Branch-free intersection test: true when rule `id` overlaps
    /// `space` in every dimension. Identical in result to
    /// [`NodeSpace::intersects_rule`]; evaluated without short-circuits
    /// so the column loads pipeline.
    // nc-lint: kernel
    #[inline]
    pub fn intersects(&self, id: RuleId, space: &NodeSpace) -> bool {
        let mut ok = true;
        for d in 0..NUM_DIMS {
            let s = &space.ranges[d];
            ok &= (self.lo[d][id] < s.hi) & (s.lo < self.hi[d][id]);
        }
        ok
    }

    /// True when rule `id`, clipped to `space`, covers all of `space`
    /// (the covered-rule truncation test). Identical in result to
    /// [`NodeSpace::covered_by_rule`].
    // nc-lint: kernel
    #[inline]
    pub fn covers(&self, id: RuleId, space: &NodeSpace) -> bool {
        let mut ok = true;
        for d in 0..NUM_DIMS {
            let s = &space.ranges[d];
            ok &= s.is_empty() || ((self.lo[d][id] <= s.lo) & (s.hi <= self.hi[d][id]));
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, Dim, DimRange, GeneratorConfig};

    #[test]
    fn columns_mirror_rules() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(5));
        let store = RuleStore::from_ruleset(&rs);
        assert_eq!(store.len(), 60);
        for (id, rule) in store.rules().iter().enumerate() {
            for d in 0..NUM_DIMS {
                assert_eq!(store.proj(d, id), (rule.ranges[d].lo, rule.ranges[d].hi));
            }
        }
    }

    #[test]
    fn intersects_and_covers_agree_with_nodespace() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 80).with_seed(6));
        let store = RuleStore::from_ruleset(&rs);
        let mut spaces = vec![NodeSpace::full()];
        spaces.extend(NodeSpace::full().cut(Dim::SrcIp, 8));
        spaces.extend(NodeSpace::full().cut(Dim::Proto, 4));
        let mut narrow = NodeSpace::full();
        narrow.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        narrow.ranges[Dim::SrcIp.index()] = DimRange::new(5, 5); // empty
        spaces.push(narrow);
        for space in &spaces {
            for id in 0..store.len() {
                assert_eq!(store.intersects(id, space), space.intersects_rule(store.rule(id)));
                assert_eq!(store.covers(id, space), space.covered_by_rule(store.rule(id)));
            }
        }
    }

    #[test]
    fn push_extends_all_columns() {
        let mut store = RuleStore::from_rules(vec![Rule::default_rule(1)]);
        let mut r = Rule::default_rule(2);
        r.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let id = store.push(r);
        assert_eq!(id, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.proj(Dim::Proto.index(), 1), (6, 7));
    }
}
