//! Incremental classifier updates (§4, "Handling classifier updates").
//!
//! Small updates modify the existing tree in place: a new rule is routed
//! down the existing structure and inserted into every leaf whose space
//! it intersects; a deleted rule is removed from its leaves and marked
//! inactive in the arena. When enough updates accumulate, the caller is
//! expected to rebuild (retrain) — [`UpdateLog`] tracks the churn so the
//! policy layer can decide when.

use crate::node::{NodeId, NodeKind, RuleId};
use crate::tree::DecisionTree;
use classbench::{Dim, Rule, DIMS};
use serde::{Deserialize, Serialize};

/// Why an update could not be applied — the admission-control taxonomy
/// live update streams surface instead of panicking. Every variant
/// leaves the serving state untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// The rule id is outside the tree's arena.
    UnknownRule(RuleId),
    /// The rule was already deleted by an earlier update.
    InactiveRule(RuleId),
    /// A dimension range with `lo > hi` — the half-open `[lo, hi)`
    /// convention means the bounds are inverted, not merely empty.
    InvertedRange {
        /// The offending dimension.
        dim: Dim,
        /// The (inverted) lower bound.
        lo: u64,
        /// The (inverted) upper bound.
        hi: u64,
    },
    /// A degenerate (`lo == hi`, matches nothing) or out-of-span
    /// (`hi > 2^bits`) dimension range.
    InvalidRange {
        /// The offending dimension.
        dim: Dim,
        /// The lower bound.
        lo: u64,
        /// The upper bound.
        hi: u64,
    },
    /// An insert identical (ranges and priority) to a rule that is
    /// already active — the payload is the existing rule's id, so the
    /// caller can reference it instead of double-inserting.
    DuplicateRule(RuleId),
    /// The insert overlay reached the rebuild policy's hard bound; the
    /// handle folds the overlay into a recompile instead of growing it
    /// (backpressure — recorded in the health report, the insert itself
    /// still lands).
    OverlayFull {
        /// The policy's `max_overlay` cap.
        cap: usize,
    },
    /// Appending the update to the attached write-ahead log failed, so
    /// the update was refused before touching any state: the durable
    /// log must never trail what the classifier serves. Carries the
    /// I/O error class (the full message lands in the health report's
    /// sticky `last_error`).
    WalAppend {
        /// The I/O error class reported by the failed append.
        kind: std::io::ErrorKind,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::UnknownRule(id) => write!(f, "rule {id} does not exist in the arena"),
            UpdateError::InactiveRule(id) => write!(f, "rule {id} is not active"),
            UpdateError::InvertedRange { dim, lo, hi } => {
                write!(f, "{dim:?} range [{lo}, {hi}) has inverted bounds")
            }
            UpdateError::InvalidRange { dim, lo, hi } => {
                write!(f, "{dim:?} range [{lo}, {hi}) is empty or exceeds the dimension span")
            }
            UpdateError::DuplicateRule(id) => {
                write!(f, "an identical rule is already active as id {id}")
            }
            UpdateError::OverlayFull { cap } => {
                write!(f, "insert overlay reached its bound of {cap}; fold-rebuild forced")
            }
            UpdateError::WalAppend { kind } => {
                write!(f, "write-ahead log append failed ({kind:?}); update refused")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// Admission control: reject malformed rules before they touch the
/// tree. A rule is admissible when every dimension range is non-empty,
/// correctly ordered, and within the dimension's span — the properties
/// every other invariant in the serving path (probe packets, low-corner
/// spot checks, interval routing) silently relies on.
pub fn validate_rule(rule: &Rule) -> Result<(), UpdateError> {
    for dim in DIMS {
        let r = rule.range(dim);
        if r.lo > r.hi {
            return Err(UpdateError::InvertedRange { dim, lo: r.lo, hi: r.hi });
        }
        if r.lo == r.hi || r.hi > dim.span() {
            return Err(UpdateError::InvalidRange { dim, lo: r.lo, hi: r.hi });
        }
    }
    Ok(())
}

/// Running counters of in-place updates applied to a tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateLog {
    /// Rules inserted since the last rebuild.
    pub inserted: usize,
    /// Rules deleted since the last rebuild.
    pub deleted: usize,
}

impl UpdateLog {
    /// Total updates applied since the last rebuild.
    pub fn total(&self) -> usize {
        self.inserted + self.deleted
    }

    /// Fraction of the current active rules that changed; the rebuild
    /// policy in the paper retrains "when enough small updates
    /// accumulate".
    ///
    /// The `active_rules == 0` edge (every rule deleted) clamps the
    /// denominator to 1, so the ratio is always finite: an emptied
    /// classifier reads as "`total` rules' worth of churn" rather than
    /// NaN/inf. That trips any sane threshold as soon as the policy's
    /// `min_updates` gate is met — one rebuild fires, the log resets,
    /// and the ratio returns to 0 instead of wedging the policy in a
    /// permanently-triggered (or never-triggered) state.
    pub fn churn(&self, active_rules: usize) -> f64 {
        self.total() as f64 / active_rules.max(1) as f64
    }
}

/// Insert `rule` into the existing tree structure. Returns the new
/// rule's stable id.
///
/// The rule is appended to the arena and added, in precedence position,
/// to every leaf whose space intersects it. At partition nodes the rule
/// descends into the child with the fewest rules (children share the
/// parent's space, and lookups consult all of them, so any child is
/// correct; picking the smallest keeps partitions balanced).
pub fn insert_rule(tree: &mut DecisionTree, rule: Rule) -> RuleId {
    let id = tree.push_rule(rule);
    route_insert(tree, id);
    id
}

/// Route an already-appended arena rule into every leaf whose space it
/// intersects — the body of [`insert_rule`], shared with the adoption
/// path ([`crate::serve::ClassifierHandle::adopt`]), which re-routes
/// rules that landed after a retrain snapshot was taken.
pub(crate) fn route_insert(tree: &mut DecisionTree, id: RuleId) {
    let mut stack: Vec<NodeId> = vec![tree.root()];
    while let Some(nid) = stack.pop() {
        if !tree.node(nid).space.intersects_rule(tree.rule(id)) {
            continue;
        }
        match tree.node(nid).kind.clone() {
            NodeKind::Leaf => tree.leaf_insert_sorted(nid, id),
            NodeKind::Partition { children } => {
                // A childless partition cannot be reached by lookups
                // either (classify consults children only), so there is
                // nowhere to route — skip instead of panicking.
                if let Some(target) = children.into_iter().min_by_key(|&c| tree.node(c).num_rules())
                {
                    stack.push(target);
                }
            }
            other => {
                // Cut / MultiCut / Split: descend into every child whose
                // space the rule intersects (it may span several).
                stack.extend(other.children().iter().copied());
            }
        }
    }
}

/// Remove `id` from every leaf list it appears in, leaving the active
/// flag alone (the flag half of deletion belongs to [`delete_rule`] and
/// the adoption path, which own the accounting).
pub(crate) fn route_remove(tree: &mut DecisionTree, id: RuleId) {
    let mut stack: Vec<NodeId> = vec![tree.root()];
    while let Some(nid) = stack.pop() {
        if !tree.node(nid).space.intersects_rule(tree.rule(id)) {
            continue;
        }
        if tree.node(nid).is_leaf() {
            tree.leaf_remove(nid, id);
        } else {
            // Every non-leaf kind descends all children: partition
            // children share the parent's space (the rule may sit in
            // any of them), and cut/split children that don't
            // intersect the rule are pruned by the check above.
            stack.extend(tree.node(nid).kind.children().iter().copied());
        }
    }
}

/// Guarantee the routing invariant for one active rule: every leaf a
/// matching packet can reach must list it. Cut/split nodes check every
/// intersecting child; a partition node completes the children that
/// already hold the rule somewhere (repairing per-leaf truncation holes
/// without duplicating the rule across partitions) and, when none does,
/// routes it into the emptiest child exactly like [`insert_rule`].
/// Returns the number of leaf lists the rule had to be added to
/// (0 = the rule was already fully routed).
pub(crate) fn ensure_rule(tree: &mut DecisionTree, id: RuleId) -> usize {
    ensure_under(tree, tree.root(), id)
}

fn ensure_under(tree: &mut DecisionTree, nid: NodeId, id: RuleId) -> usize {
    if !tree.node(nid).space.intersects_rule(tree.rule(id)) {
        return 0;
    }
    match tree.node(nid).kind.clone() {
        NodeKind::Leaf => {
            if tree.rules_at(nid).contains(&id) {
                0
            } else {
                tree.leaf_insert_sorted(nid, id);
                1
            }
        }
        NodeKind::Partition { children } => {
            let holders: Vec<NodeId> =
                children.iter().copied().filter(|&c| subtree_holds(tree, c, id)).collect();
            if holders.is_empty() {
                // Same childless-partition tolerance as `route_insert`:
                // nothing to descend means nothing a lookup can reach.
                match children.into_iter().min_by_key(|&c| tree.node(c).num_rules()) {
                    Some(target) => ensure_under(tree, target, id),
                    None => 0,
                }
            } else {
                holders.into_iter().map(|c| ensure_under(tree, c, id)).sum()
            }
        }
        other => other.children().iter().map(|&c| ensure_under(tree, c, id)).sum(),
    }
}

/// True when any leaf under `nid` lists `id`.
fn subtree_holds(tree: &DecisionTree, nid: NodeId, id: RuleId) -> bool {
    let mut stack: Vec<NodeId> = vec![nid];
    while let Some(n) = stack.pop() {
        if tree.node(n).is_leaf() {
            if tree.rules_at(n).contains(&id) {
                return true;
            }
        } else {
            stack.extend(tree.node(n).kind.children().iter().copied());
        }
    }
    false
}

/// Delete a rule: mark it inactive and remove it from every leaf list.
///
/// The deletion routes down the tree exactly like [`insert_rule`]:
/// only subtrees whose space intersects the rule are visited, so the
/// cost is O(depth × touched leaves) rather than a scan of the whole
/// node arena. Partition children share their parent's space and any
/// of them may hold the rule, so all are descended.
///
/// Errors (instead of panicking) on an out-of-range or already-deleted
/// id, so callers driving live update streams can surface bad updates
/// without crashing the serving process.
pub fn delete_rule(tree: &mut DecisionTree, id: RuleId) -> Result<(), UpdateError> {
    if id >= tree.rules().len() {
        return Err(UpdateError::UnknownRule(id));
    }
    if !tree.is_active(id) {
        return Err(UpdateError::InactiveRule(id));
    }
    tree.deactivate_rule(id);
    route_remove(tree, id);
    Ok(())
}

impl DecisionTree {
    /// Append a rule to the arena (used by [`insert_rule`]).
    pub(crate) fn push_rule(&mut self, rule: Rule) -> RuleId {
        self.push_rule_impl(rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::assert_tree_valid;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, DimRange, GeneratorConfig,
        TraceConfig,
    };

    fn built_tree() -> DecisionTree {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(4));
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::SrcIp, 8);
        for k in kids {
            if !t.is_terminal(k, 8) {
                t.cut_node(k, Dim::DstIp, 4);
            }
        }
        t
    }

    fn new_rule(priority: i32) -> Rule {
        let mut r = Rule::default_rule(priority);
        r.ranges[Dim::SrcIp.index()] = DimRange::from_prefix(0x0a000000, 8, 32);
        r.ranges[Dim::DstPort.index()] = DimRange::exact(8080);
        r
    }

    #[test]
    fn insert_is_visible_to_classification() {
        let mut t = built_tree();
        let hi_prio = t.rules().iter().map(|r| r.priority).max().unwrap() + 1;
        let id = insert_rule(&mut t, new_rule(hi_prio));
        // A packet inside the new rule now matches it (highest priority).
        let p = classbench::Packet::new(0x0a000001, 0, 0, 8080, 6);
        assert_eq!(t.classify(&p), Some(id));
        assert_tree_valid(&t, 300, 1);
    }

    #[test]
    fn insert_respects_existing_priorities() {
        let mut t = built_tree();
        // Insert at the *lowest* priority: the default rule still wins
        // where it used to.
        let lo_prio = t.rules().iter().map(|r| r.priority).min().unwrap() - 1;
        let id = insert_rule(&mut t, new_rule(lo_prio));
        let p = classbench::Packet::new(0x0a000001, 0, 0, 8080, 6);
        let got = t.classify(&p);
        assert_ne!(got, Some(id), "low-priority insert must not shadow");
        assert_tree_valid(&t, 300, 2);
    }

    #[test]
    fn delete_removes_matches() {
        let mut t = built_tree();
        let hi_prio = t.rules().iter().map(|r| r.priority).max().unwrap() + 1;
        let id = insert_rule(&mut t, new_rule(hi_prio));
        let p = classbench::Packet::new(0x0a000001, 0, 0, 8080, 6);
        assert_eq!(t.classify(&p), Some(id));
        delete_rule(&mut t, id).unwrap();
        assert_ne!(t.classify(&p), Some(id));
        assert!(!t.is_active(id));
        assert_tree_valid(&t, 300, 3);
    }

    #[test]
    fn double_delete_and_bad_ids_error() {
        let mut t = built_tree();
        let id = insert_rule(&mut t, new_rule(999));
        assert_eq!(delete_rule(&mut t, id), Ok(()));
        assert_eq!(delete_rule(&mut t, id), Err(UpdateError::InactiveRule(id)));
        let out_of_range = t.rules().len();
        assert_eq!(delete_rule(&mut t, out_of_range), Err(UpdateError::UnknownRule(out_of_range)));
        // The failed deletes changed nothing.
        assert_tree_valid(&t, 200, 77);
    }

    #[test]
    fn delete_reaches_rules_in_every_partition_child() {
        // Distribute the original rules across two partition children,
        // then delete rules from both sides: the routed delete must
        // descend every partition child (they share the parent space),
        // not just the smallest one.
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(41));
        let mut t = DecisionTree::new(&rs);
        let all = t.rules_at(t.root()).to_vec();
        let (a, b) = all.split_at(all.len() / 2);
        let parts = t.partition_node(t.root(), vec![a.to_vec(), b.to_vec()]);
        for p in parts {
            if !t.is_terminal(p, 8) {
                t.cut_node(p, Dim::SrcIp, 4);
            }
        }
        for &victim in [a[0], a[a.len() - 1], b[0], b[b.len() - 1]].iter() {
            delete_rule(&mut t, victim).unwrap();
            assert!(!t.is_active(victim));
            // No leaf may still list the victim.
            for nid in t.leaf_ids().collect::<Vec<_>>() {
                assert!(!t.rules_at(nid).contains(&victim), "leaf {nid} kept rule {victim}");
            }
        }
        assert_tree_valid(&t, 300, 42);
    }

    #[test]
    fn generation_advances_on_every_update() {
        let mut t = built_tree();
        let g0 = t.generation();
        let id = insert_rule(&mut t, new_rule(55));
        let g1 = t.generation();
        assert!(g1 > g0, "insert must advance the generation");
        delete_rule(&mut t, id).unwrap();
        assert!(t.generation() > g1, "delete must advance the generation");
        // A failed delete is a no-op and leaves the generation alone.
        let g2 = t.generation();
        assert!(delete_rule(&mut t, id).is_err());
        assert_eq!(t.generation(), g2);
    }

    #[test]
    fn many_updates_stay_consistent() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 100).with_seed(9));
        let extra = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 40).with_seed(10));
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::DstIp, 16);
        for k in kids {
            if !t.is_terminal(k, 8) {
                t.cut_node(k, Dim::SrcPort, 4);
            }
        }
        let mut log = UpdateLog::default();
        let mut inserted = Vec::new();
        for r in extra.rules().iter().take(30) {
            let mut r = r.clone();
            r.priority += 1000; // stack above existing rules
            inserted.push(insert_rule(&mut t, r));
            log.inserted += 1;
        }
        for &id in inserted.iter().step_by(2) {
            delete_rule(&mut t, id).unwrap();
            log.deleted += 1;
        }
        assert_eq!(log.inserted, 30);
        assert_eq!(log.deleted, 15);
        assert!(log.churn(t.num_active_rules()) > 0.0);
        assert_tree_valid(&t, 400, 4);
        // Tree classification equals linear scan on a realistic trace too.
        let trace = generate_trace(&rs, &TraceConfig::new(200));
        for p in &trace {
            assert_eq!(t.classify(p), t.linear_classify(p));
        }
    }

    #[test]
    fn churn_stays_finite_with_zero_active_rules() {
        // Deleting every rule must never produce a NaN/inf churn ratio
        // that wedges (or permanently triggers) the rebuild policy: the
        // denominator clamps to 1 and the ratio reads as `total`.
        let mut log = UpdateLog::default();
        assert_eq!(log.churn(0), 0.0);
        log.deleted = 5;
        assert!(log.churn(0).is_finite());
        assert_eq!(log.churn(0), 5.0);
        // A reset log on an empty classifier reads as zero churn again:
        // the trigger state clears, it does not latch.
        assert_eq!(UpdateLog::default().churn(0), 0.0);
    }

    #[test]
    fn delete_every_rule_leaves_a_consistent_empty_tree() {
        let mut t = built_tree();
        let all: Vec<RuleId> = (0..t.rules().len()).collect();
        for id in all {
            delete_rule(&mut t, id).unwrap();
        }
        assert_eq!(t.num_active_rules(), 0);
        let trace = generate_trace(
            &generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(4)),
            &TraceConfig::new(100),
        );
        for p in &trace {
            assert_eq!(t.classify(p), None, "empty classifier must match nothing");
            assert_eq!(t.linear_classify(p), None);
        }
        // The emptied tree still accepts inserts and serves them.
        let id = insert_rule(&mut t, new_rule(7));
        let p = classbench::Packet::new(0x0a000001, 0, 0, 8080, 6);
        assert_eq!(t.classify(&p), Some(id));
        assert_tree_valid(&t, 200, 43);
    }

    #[test]
    fn ensure_rule_repairs_missing_leaf_placements() {
        let mut t = built_tree();
        let hi = t.rules().iter().map(|r| r.priority).max().unwrap() + 1;
        let id = insert_rule(&mut t, new_rule(hi));
        // Fully routed already: ensure is a no-op.
        assert_eq!(ensure_rule(&mut t, id), 0);
        // Knock the rule out of its leaves (keeping it active), then
        // ensure must restore every placement.
        route_remove(&mut t, id);
        let p = classbench::Packet::new(0x0a000001, 0, 0, 8080, 6);
        assert_ne!(t.classify(&p), Some(id), "rule is unreachable after removal");
        assert!(ensure_rule(&mut t, id) > 0);
        assert_eq!(t.classify(&p), Some(id));
        assert_tree_valid(&t, 300, 44);
    }

    #[test]
    fn ensure_rule_respects_partition_ownership() {
        // A rule already held by one partition child must not be
        // duplicated into its siblings, while a rule held by none lands
        // in exactly the emptiest child.
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(6));
        let mut t = DecisionTree::new(&rs);
        let all = t.rules_at(t.root()).to_vec();
        let (a, b) = all.split_at(all.len() / 3);
        t.partition_node(t.root(), vec![a.to_vec(), b.to_vec()]);
        let hi = t.rules().iter().map(|r| r.priority).max().unwrap() + 1;
        let id = insert_rule(&mut t, new_rule(hi));
        let placed: Vec<usize> =
            t.node(t.root()).kind.children().iter().map(|&c| t.node(c).num_rules()).collect();
        assert_eq!(ensure_rule(&mut t, id), 0, "already routed: no extra placements");
        let after: Vec<usize> =
            t.node(t.root()).kind.children().iter().map(|&c| t.node(c).num_rules()).collect();
        assert_eq!(placed, after, "ensure must not duplicate across partition children");
        assert_tree_valid(&t, 300, 45);
    }

    #[test]
    fn insert_into_partitioned_tree_balances() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(6));
        let mut t = DecisionTree::new(&rs);
        let all = t.rules_at(t.root()).to_vec();
        let (a, b) = all.split_at(all.len() / 3);
        t.partition_node(t.root(), vec![a.to_vec(), b.to_vec()]);
        let before: Vec<usize> =
            t.node(t.root()).kind.children().iter().map(|&c| t.node(c).num_rules()).collect();
        let hi = t.rules().iter().map(|r| r.priority).max().unwrap() + 1;
        insert_rule(&mut t, new_rule(hi));
        let after: Vec<usize> =
            t.node(t.root()).kind.children().iter().map(|&c| t.node(c).num_rules()).collect();
        // The smaller partition received the rule.
        let min_idx = before.iter().enumerate().min_by_key(|&(_, &n)| n).unwrap().0;
        assert_eq!(after[min_idx], before[min_idx] + 1);
        assert_tree_valid(&t, 300, 5);
    }
}
