//! Worst-case classification time and space statistics, per the paper's
//! recursion (Eqs. 1–4).
//!
//! For a node `n` with per-node access cost `t_n = 1` and byte cost
//! `s_n`:
//!
//! * cut/split node:  `T_n = 1 + max_i T_i`, `S_n = s_n + Σ_i S_i`  (Eq. 1, 2)
//! * partition node:  `T_n = 1 + Σ_i T_i`,  `S_n = s_n + Σ_i S_i`  (Eq. 3, 4)
//! * leaf:            `T_n = 1`,            `S_n = s_n`
//!
//! `T_root` is the metric plotted as *classification time* in Figures 8,
//! 10 and 11 — for non-partitioned trees it is simply the tree depth.

use crate::memory::MemoryModel;
use crate::node::{NodeId, NodeKind};
use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};

/// Summary statistics of a built tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Worst-case classification time `T_root` (Eqs. 1/3).
    pub time: usize,
    /// Total bytes under the default [`MemoryModel`].
    pub bytes: usize,
    /// Bytes per active rule (the paper's space metric).
    pub bytes_per_rule: f64,
    /// Number of nodes in the tree.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Maximum node depth (levels below the root).
    pub max_depth: usize,
    /// Total leaf rule references divided by active rules — the rule
    /// replication factor the partition heuristics fight.
    pub replication: f64,
    /// Largest number of rules stored in any leaf.
    pub largest_leaf: usize,
}

/// Worst-case classification time of the subtree rooted at `id`
/// (`Time(s)` in Algorithm 1).
pub fn subtree_time(tree: &DecisionTree, id: NodeId) -> usize {
    let node = tree.node(id);
    match &node.kind {
        NodeKind::Leaf => 1,
        NodeKind::Partition { children } => {
            1 + children.iter().map(|&c| subtree_time(tree, c)).sum::<usize>()
        }
        other => 1 + other.children().iter().map(|&c| subtree_time(tree, c)).max().unwrap_or(0),
    }
}

/// Bytes of the subtree rooted at `id` (`Space(s)` in Algorithm 1),
/// excluding the shared rule table.
pub fn subtree_bytes(tree: &DecisionTree, id: NodeId, model: &MemoryModel) -> usize {
    let node = tree.node(id);
    let own = model.node_bytes(&node.kind, node.num_rules());
    own + node.kind.children().iter().map(|&c| subtree_bytes(tree, c, model)).sum::<usize>()
}

/// Average lookup cost (nodes visited) over a packet trace — the
/// traffic-aware classification-time metric of the paper's conclusion
/// (§8: optimising for a specific traffic pattern rather than the worst
/// case). Returns 0 for an empty trace.
pub fn average_lookup_cost(tree: &DecisionTree, trace: &[classbench::Packet]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let total: usize = trace.iter().map(|p| tree.classify_traced(p).1).sum();
    total as f64 / trace.len() as f64
}

impl TreeStats {
    /// Compute all statistics for a tree under the default memory model.
    pub fn compute(tree: &DecisionTree) -> TreeStats {
        TreeStats::compute_with(tree, &MemoryModel::default())
    }

    /// Compute all statistics under an explicit memory model.
    pub fn compute_with(tree: &DecisionTree, model: &MemoryModel) -> TreeStats {
        let time = subtree_time(tree, tree.root());
        let bytes = subtree_bytes(tree, tree.root(), model)
            + model.rule_table_entry * tree.num_active_rules();
        let mut leaves = 0usize;
        let mut max_depth = 0usize;
        let mut leaf_rule_refs = 0usize;
        let mut largest_leaf = 0usize;
        for node in tree.nodes() {
            max_depth = max_depth.max(node.depth);
            if node.is_leaf() {
                leaves += 1;
                leaf_rule_refs += node.num_rules();
                largest_leaf = largest_leaf.max(node.num_rules());
            }
        }
        let active = tree.num_active_rules().max(1);
        TreeStats {
            time,
            bytes,
            bytes_per_rule: bytes as f64 / active as f64,
            nodes: tree.num_nodes(),
            leaves,
            max_depth,
            replication: leaf_rule_refs as f64 / active as f64,
            largest_leaf,
        }
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time={} bytes/rule={:.1} nodes={} leaves={} depth={} replication={:.2}x largest_leaf={}",
            self.time,
            self.bytes_per_rule,
            self.nodes,
            self.leaves,
            self.max_depth,
            self.replication,
            self.largest_leaf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{Dim, DimRange, Rule, RuleSet};

    fn rules() -> RuleSet {
        let mut a = Rule::default_rule(2);
        a.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let mut b = Rule::default_rule(1);
        b.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        RuleSet::new(vec![a, b, Rule::default_rule(0)])
    }

    #[test]
    fn single_leaf_has_time_one() {
        let t = DecisionTree::new(&rules());
        let s = TreeStats::compute(&t);
        assert_eq!(s.time, 1);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.largest_leaf, 3);
        assert!((s.replication - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cut_time_is_one_plus_max_child() {
        let mut t = DecisionTree::new(&rules());
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        assert_eq!(subtree_time(&t, t.root()), 2);
        // Expand one child further: the max branch dominates.
        t.cut_node(kids[0], Dim::Proto, 2);
        assert_eq!(subtree_time(&t, t.root()), 3);
        let s = TreeStats::compute(&t);
        assert_eq!(s.time, 3);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.leaves, 5);
    }

    #[test]
    fn partition_time_is_one_plus_sum() {
        let mut t = DecisionTree::new(&rules());
        let kids = t.partition_node(t.root(), vec![vec![0], vec![1, 2]]);
        // Both children are leaves (T=1 each): root T = 1 + 1 + 1 = 3.
        assert_eq!(subtree_time(&t, t.root()), 3);
        // Expanding one partition child adds to the sum.
        t.cut_node(kids[1], Dim::DstPort, 2);
        assert_eq!(subtree_time(&t, t.root()), 4);
    }

    #[test]
    fn subtree_bytes_match_model_totals() {
        let mut t = DecisionTree::new(&rules());
        t.cut_node(t.root(), Dim::Proto, 2);
        let model = MemoryModel::default();
        let s = TreeStats::compute(&t);
        assert_eq!(s.bytes, subtree_bytes(&t, t.root(), &model) + 3 * model.rule_table_entry);
        assert_eq!(s.bytes, model.tree_bytes(&t));
    }

    #[test]
    fn replication_counts_leaf_refs() {
        let mut t = DecisionTree::new(&rules());
        // Cutting SrcIp replicates all (wildcard-in-SrcIp) rules into
        // both children: replication 2x.
        t.cut_node(t.root(), Dim::SrcIp, 2);
        let s = TreeStats::compute(&t);
        assert!((s.replication - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_cost_bounded_by_worst_case() {
        let mut t = DecisionTree::new(&rules());
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        t.cut_node(kids[0], Dim::Proto, 2);
        let trace: Vec<classbench::Packet> =
            (0..64).map(|i| classbench::Packet::new(0, 0, 0, i * 1024, i % 256)).collect();
        let avg = average_lookup_cost(&t, &trace);
        let worst = TreeStats::compute(&t).time as f64;
        assert!(avg >= 1.0);
        assert!(avg <= worst, "avg {avg} > worst {worst}");
        // Empty trace is well-defined.
        assert_eq!(average_lookup_cost(&t, &[]), 0.0);
    }

    #[test]
    fn display_mentions_key_fields() {
        let t = DecisionTree::new(&rules());
        let s = TreeStats::compute(&t).to_string();
        assert!(s.contains("time=1"));
        assert!(s.contains("bytes/rule="));
    }
}
