//! 5-dimensional boxes: the region of header space a tree node owns.

use classbench::{Dim, DimRange, Packet, Rule, DIMS, NUM_DIMS};
use serde::{Deserialize, Serialize};

/// The hyper-rectangle of header space a tree node is responsible for.
///
/// The root owns the full space; cutting/splitting produces child spaces
/// that tile the parent exactly. Rule-partition children share their
/// parent's space (they divide the *rules*, not the space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeSpace {
    /// Per-dimension ranges, indexed by [`Dim`].
    pub ranges: [DimRange; NUM_DIMS],
}

impl NodeSpace {
    /// The full 5-tuple header space.
    pub fn full() -> Self {
        NodeSpace {
            ranges: [
                DimRange::full(Dim::SrcIp),
                DimRange::full(Dim::DstIp),
                DimRange::full(Dim::SrcPort),
                DimRange::full(Dim::DstPort),
                DimRange::full(Dim::Proto),
            ],
        }
    }

    /// The range this space covers in `dim`.
    #[inline]
    pub fn range(&self, dim: Dim) -> &DimRange {
        &self.ranges[dim.index()]
    }

    /// True when the packet lies inside the box.
    #[inline]
    pub fn contains(&self, packet: &Packet) -> bool {
        self.ranges.iter().zip(packet.values.iter()).all(|(r, &v)| r.contains(v))
    }

    /// True when the rule's hypercube overlaps the box in every dimension.
    #[inline]
    pub fn intersects_rule(&self, rule: &Rule) -> bool {
        rule.intersects_space(&self.ranges)
    }

    /// True when the rule's hypercube, clipped to this box, covers the
    /// whole box (used for redundancy pruning: such a rule matches every
    /// packet that reaches the node).
    pub fn covered_by_rule(&self, rule: &Rule) -> bool {
        self.ranges.iter().zip(rule.ranges.iter()).all(|(s, r)| r.contains_range(s))
    }

    /// Number of distinct values covered (product of range lengths).
    /// Saturates at `u128::MAX`; useful for sanity checks only.
    pub fn volume(&self) -> u128 {
        self.ranges.iter().map(|r| r.len() as u128).product()
    }

    /// Cut along `dim` into `ncuts` equal sub-boxes (HiCuts-style).
    pub fn cut(&self, dim: Dim, ncuts: usize) -> Vec<NodeSpace> {
        self.ranges[dim.index()]
            .split_equal(ncuts)
            .into_iter()
            .map(|r| {
                let mut s = *self;
                s.ranges[dim.index()] = r;
                s
            })
            .collect()
    }

    /// Cut along several dimensions at once (HyperCuts-style); children
    /// are returned in row-major order of `dims`.
    pub fn multi_cut(&self, dims: &[(Dim, usize)]) -> Vec<NodeSpace> {
        let mut spaces = vec![*self];
        for &(dim, ncuts) in dims {
            let mut next = Vec::with_capacity(spaces.len() * ncuts);
            for s in &spaces {
                next.extend(s.cut(dim, ncuts));
            }
            spaces = next;
        }
        spaces
    }

    /// Split at `threshold` in `dim` into (left `[lo, t)`, right `[t, hi)`).
    pub fn split(&self, dim: Dim, threshold: u64) -> (NodeSpace, NodeSpace) {
        let (l, r) = self.ranges[dim.index()].split_at(threshold);
        let mut left = *self;
        let mut right = *self;
        left.ranges[dim.index()] = l;
        right.ranges[dim.index()] = r;
        (left, right)
    }

    /// Shrink each dimension to the tight bounding box of the given rules
    /// clipped to this space (HyperCuts' *region compaction* optimisation).
    ///
    /// Returns `None` when `rules` is empty (nothing to bound).
    pub fn compact_to_rules<'a>(
        &self,
        rules: impl IntoIterator<Item = &'a Rule>,
    ) -> Option<NodeSpace> {
        let mut bounds: Option<[DimRange; NUM_DIMS]> = None;
        for rule in rules {
            let clipped: [DimRange; NUM_DIMS] =
                std::array::from_fn(|i| rule.ranges[i].intersect(&self.ranges[i]));
            bounds = Some(match bounds {
                None => clipped,
                Some(b) => std::array::from_fn(|i| DimRange {
                    lo: b[i].lo.min(clipped[i].lo),
                    hi: b[i].hi.max(clipped[i].hi),
                }),
            });
        }
        bounds.map(|ranges| NodeSpace { ranges })
    }

    /// True when any dimension's range is empty (the box covers nothing).
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().any(|r| r.is_empty())
    }
}

impl std::fmt::Display for NodeSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{}={}", DIMS[i].name(), r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_space_contains_any_valid_packet() {
        let s = NodeSpace::full();
        assert!(s.contains(&Packet::new(0, 0, 0, 0, 0)));
        assert!(s.contains(&Packet::new((1 << 32) - 1, 0, 65535, 65535, 255)));
        assert_eq!(s.volume(), (1u128 << 32) * (1 << 32) * (1 << 16) * (1 << 16) * 256);
    }

    #[test]
    fn cut_tiles_the_space() {
        let s = NodeSpace::full();
        let kids = s.cut(Dim::SrcPort, 4);
        assert_eq!(kids.len(), 4);
        assert_eq!(kids[0].range(Dim::SrcPort).lo, 0);
        assert_eq!(kids[3].range(Dim::SrcPort).hi, 65536);
        // Other dims untouched.
        assert_eq!(kids[2].range(Dim::DstIp), s.range(Dim::DstIp));
        let vol: u128 = kids.iter().map(|k| k.volume()).sum();
        assert_eq!(vol, s.volume());
    }

    #[test]
    fn multi_cut_row_major() {
        let s = NodeSpace::full();
        let kids = s.multi_cut(&[(Dim::Proto, 2), (Dim::SrcPort, 2)]);
        assert_eq!(kids.len(), 4);
        // Row-major: proto splits outermost... actually innermost last:
        // children 0,1 share the first proto half.
        assert_eq!(kids[0].range(Dim::Proto), kids[1].range(Dim::Proto));
        assert_ne!(kids[0].range(Dim::SrcPort), kids[1].range(Dim::SrcPort));
        assert_ne!(kids[0].range(Dim::Proto), kids[2].range(Dim::Proto));
        let vol: u128 = kids.iter().map(|k| k.volume()).sum();
        assert_eq!(vol, s.volume());
    }

    #[test]
    fn split_partitions_dim() {
        let s = NodeSpace::full();
        let (l, r) = s.split(Dim::DstPort, 1024);
        assert_eq!(l.range(Dim::DstPort), &DimRange::new(0, 1024));
        assert_eq!(r.range(Dim::DstPort), &DimRange::new(1024, 65536));
        assert!(l.contains(&Packet::new(0, 0, 0, 1023, 0)));
        assert!(!l.contains(&Packet::new(0, 0, 0, 1024, 0)));
        assert!(r.contains(&Packet::new(0, 0, 0, 1024, 0)));
    }

    #[test]
    fn covered_by_default_rule() {
        let s = NodeSpace::full();
        assert!(s.covered_by_rule(&Rule::default_rule(0)));
        let mut narrow = Rule::default_rule(0);
        narrow.ranges[Dim::Proto.index()] = DimRange::exact(6);
        assert!(!s.covered_by_rule(&narrow));
        // But a node space inside proto=6 is covered.
        let mut sub = s;
        sub.ranges[Dim::Proto.index()] = DimRange::exact(6);
        assert!(sub.covered_by_rule(&narrow));
    }

    #[test]
    fn region_compaction_bounds_rules() {
        let s = NodeSpace::full();
        let mut r1 = Rule::default_rule(0);
        r1.ranges[Dim::SrcPort.index()] = DimRange::new(100, 200);
        let mut r2 = Rule::default_rule(0);
        r2.ranges[Dim::SrcPort.index()] = DimRange::new(150, 400);
        let c = s.compact_to_rules([&r1, &r2]).unwrap();
        assert_eq!(c.range(Dim::SrcPort), &DimRange::new(100, 400));
        assert_eq!(c.range(Dim::DstIp), s.range(Dim::DstIp));
        assert!(s.compact_to_rules(std::iter::empty()).is_none());
    }

    proptest! {
        #[test]
        fn prop_cut_children_disjoint_and_complete(
            ncuts in 1usize..33, dim_idx in 0usize..5,
            sport in 0u64..65536, proto in 0u64..256)
        {
            let dim = Dim::from_index(dim_idx);
            let s = NodeSpace::full();
            let kids = s.cut(dim, ncuts);
            let p = Packet::new(12345, 67890, sport, 4242, proto);
            // Exactly one child contains any given packet.
            let owners = kids.iter().filter(|k| k.contains(&p)).count();
            prop_assert_eq!(owners, 1);
        }

        #[test]
        fn prop_split_exhaustive(threshold in 0u64..70000, sport in 0u64..65536) {
            let s = NodeSpace::full();
            let (l, r) = s.split(Dim::SrcPort, threshold);
            let p = Packet::new(0, 0, sport, 0, 0);
            prop_assert!(l.contains(&p) ^ r.contains(&p));
        }
    }
}
