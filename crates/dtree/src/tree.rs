//! The arena-backed decision tree and its expansion operations.

use crate::node::{Node, NodeId, NodeKind, RuleId};
use crate::space::NodeSpace;
use classbench::{Dim, Packet, Rule, RuleSet};
use serde::{Deserialize, Serialize};

/// A packet-classification decision tree.
///
/// The tree owns a **stable rule arena**: rule ids are indices that never
/// shift, so incremental updates (appending new rules, marking deletions)
/// do not invalidate the rule lists stored at leaves. When constructed
/// with [`DecisionTree::new`] from a [`RuleSet`], rule ids equal the rule
/// set's priority-order indices, so `classify` results are directly
/// comparable with [`RuleSet::classify`].
///
/// Match precedence is *higher priority wins, ties broken by lower rule
/// id* — identical to the linear-scan ground truth.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    rules: Vec<Rule>,
    active: Vec<bool>,
    /// Maintained count of `true` entries in `active`, so
    /// [`Self::num_active_rules`] is O(1) in reward/stats loops.
    num_active: usize,
    nodes: Vec<Node>,
    root: NodeId,
    /// Bumped on every structural or rule mutation (expansions,
    /// truncation, rule insertion/deletion). A compiled [`crate::FlatTree`]
    /// records the generation it was built from, so a snapshot that no
    /// longer reflects this tree is detectable ([`crate::FlatTree::is_stale`])
    /// instead of silently serving stale matches.
    generation: u64,
}

/// Hand-written so the JSON deployment format stays exactly the four
/// fields it has always been: `num_active` and `generation` are derived
/// state, never serialised — trees saved by earlier versions load
/// unchanged, a loaded file cannot smuggle in a count that disagrees
/// with `active`, and a freshly loaded tree starts at generation 0.
impl Serialize for DecisionTree {
    fn serialize_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("rules", self.rules.serialize_value());
        map.insert("active", self.active.serialize_value());
        map.insert("nodes", self.nodes.serialize_value());
        map.insert("root", self.root.serialize_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for DecisionTree {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("DecisionTree: expected object"))?;
        let field = |name: &str| {
            obj.get(name).ok_or_else(|| {
                serde::Error::custom(format!("DecisionTree: missing field `{name}`"))
            })
        };
        let rules: Vec<Rule> = Deserialize::deserialize_value(field("rules")?)?;
        let active: Vec<bool> = Deserialize::deserialize_value(field("active")?)?;
        let nodes: Vec<Node> = Deserialize::deserialize_value(field("nodes")?)?;
        let root: NodeId = Deserialize::deserialize_value(field("root")?)?;
        let num_active = active.iter().filter(|&&a| a).count();
        Ok(DecisionTree { rules, active, num_active, nodes, root, generation: 0 })
    }
}

impl DecisionTree {
    /// Start a tree for `rules`: a single root leaf owning every rule
    /// and the full header space.
    pub fn new(rules: &RuleSet) -> Self {
        let rules: Vec<Rule> = rules.rules().to_vec();
        let n = rules.len();
        let root = Node::leaf(NodeSpace::full(), (0..n).collect(), 0, None);
        DecisionTree {
            active: vec![true; n],
            num_active: n,
            rules,
            nodes: vec![root],
            root: 0,
            generation: 0,
        }
    }

    /// Monotonic mutation counter: any expansion, truncation, or rule
    /// update advances it. Compare with [`crate::FlatTree::generation`]
    /// to detect stale compiled snapshots.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record a mutation (see [`Self::generation`]).
    #[inline]
    fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node arena (all nodes ever created, in creation order).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The rule arena (including deleted rules; see [`Self::is_active`]).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Borrow a rule by id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id]
    }

    /// True while the rule has not been deleted by an update.
    pub fn is_active(&self, id: RuleId) -> bool {
        self.active[id]
    }

    /// Number of non-deleted rules. O(1): the count is maintained by
    /// rule insertion and deletion rather than scanned on demand.
    pub fn num_active_rules(&self) -> usize {
        debug_assert_eq!(self.num_active, self.active.iter().filter(|&&a| a).count());
        self.num_active
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if rule `a` takes precedence over rule `b`.
    #[inline]
    pub fn precedes(&self, a: RuleId, b: RuleId) -> bool {
        let (pa, pb) = (self.rules[a].priority, self.rules[b].priority);
        pa > pb || (pa == pb && a < b)
    }

    /// Ground-truth linear scan over the arena (used by the validator
    /// and as the reference for incremental updates).
    pub fn linear_classify(&self, packet: &Packet) -> Option<RuleId> {
        let mut best: Option<RuleId> = None;
        for (id, rule) in self.rules.iter().enumerate() {
            if self.active[id] && rule.matches(packet) && best.is_none_or(|b| self.precedes(id, b))
            {
                best = Some(id);
            }
        }
        best
    }

    /// Index of the child a packet descends into under an equal-size cut
    /// of `range` into `ncuts` pieces. Clamped, so packets outside the
    /// (possibly region-compacted) range map to the nearest child; leaf
    /// matching re-checks full rule predicates, preserving correctness.
    #[inline]
    fn cut_child_index(range: &classbench::DimRange, ncuts: usize, value: u64) -> usize {
        let step = (range.len() / ncuts as u64).max(1);
        ((value.saturating_sub(range.lo)) / step).min(ncuts as u64 - 1) as usize
    }

    /// Classify a packet: id of the highest-precedence matching rule.
    pub fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.classify_from(self.root, packet)
    }

    /// Classify and report the lookup cost: the number of nodes visited,
    /// counting every consulted partition child subtree (the same
    /// accounting as Eq. 1/3, but for this packet's actual path rather
    /// than the worst case). Used for traffic-aware objectives (§8).
    pub fn classify_traced(&self, packet: &Packet) -> (Option<RuleId>, usize) {
        let mut visited = 0usize;
        let result = self.classify_traced_from(self.root, packet, &mut visited);
        (result, visited)
    }

    fn classify_traced_from(
        &self,
        mut id: NodeId,
        packet: &Packet,
        visited: &mut usize,
    ) -> Option<RuleId> {
        loop {
            *visited += 1;
            let node = &self.nodes[id];
            match &node.kind {
                NodeKind::Leaf => {
                    return node
                        .rules
                        .iter()
                        .copied()
                        .find(|&r| self.active[r] && self.rules[r].matches(packet));
                }
                NodeKind::Partition { children } => {
                    let mut best: Option<RuleId> = None;
                    for &c in children {
                        if let Some(r) = self.classify_traced_from(c, packet, visited) {
                            if best.is_none_or(|b| self.precedes(r, b)) {
                                best = Some(r);
                            }
                        }
                    }
                    return best;
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let idx =
                        Self::cut_child_index(node.space.range(*dim), *ncuts, packet.value(*dim));
                    id = children[idx];
                }
                NodeKind::MultiCut { dims, children } => {
                    let mut idx = 0usize;
                    for &(dim, ncuts) in dims {
                        let i =
                            Self::cut_child_index(node.space.range(dim), ncuts, packet.value(dim));
                        idx = idx * ncuts + i;
                    }
                    id = children[idx];
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let v = packet.value(*dim);
                    let idx = bounds
                        .partition_point(|&b| b <= v)
                        .saturating_sub(1)
                        .min(children.len() - 1);
                    id = children[idx];
                }
                NodeKind::Split { dim, threshold, children } => {
                    id = if packet.value(*dim) < *threshold { children[0] } else { children[1] };
                }
            }
        }
    }

    /// How many packets of `trace` pass through each node during lookup
    /// (partition children each see every packet their parent sees).
    /// Index-aligned with the node arena.
    pub fn node_visit_counts(&self, trace: &[Packet]) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for packet in trace {
            self.count_visits(self.root, packet, &mut counts);
        }
        counts
    }

    fn count_visits(&self, mut id: NodeId, packet: &Packet, counts: &mut [usize]) {
        loop {
            counts[id] += 1;
            let node = &self.nodes[id];
            match &node.kind {
                NodeKind::Leaf => return,
                NodeKind::Partition { children } => {
                    for &c in children {
                        self.count_visits(c, packet, counts);
                    }
                    return;
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let idx =
                        Self::cut_child_index(node.space.range(*dim), *ncuts, packet.value(*dim));
                    id = children[idx];
                }
                NodeKind::MultiCut { dims, children } => {
                    let mut idx = 0usize;
                    for &(dim, ncuts) in dims {
                        let i =
                            Self::cut_child_index(node.space.range(dim), ncuts, packet.value(dim));
                        idx = idx * ncuts + i;
                    }
                    id = children[idx];
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let v = packet.value(*dim);
                    let idx = bounds
                        .partition_point(|&b| b <= v)
                        .saturating_sub(1)
                        .min(children.len() - 1);
                    id = children[idx];
                }
                NodeKind::Split { dim, threshold, children } => {
                    id = if packet.value(*dim) < *threshold { children[0] } else { children[1] };
                }
            }
        }
    }

    fn classify_from(&self, mut id: NodeId, packet: &Packet) -> Option<RuleId> {
        loop {
            let node = &self.nodes[id];
            match &node.kind {
                NodeKind::Leaf => {
                    return node
                        .rules
                        .iter()
                        .copied()
                        .find(|&r| self.active[r] && self.rules[r].matches(packet));
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let idx =
                        Self::cut_child_index(node.space.range(*dim), *ncuts, packet.value(*dim));
                    id = children[idx];
                }
                NodeKind::MultiCut { dims, children } => {
                    let mut idx = 0usize;
                    for &(dim, ncuts) in dims {
                        let i =
                            Self::cut_child_index(node.space.range(dim), ncuts, packet.value(dim));
                        idx = idx * ncuts + i;
                    }
                    id = children[idx];
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let v = packet.value(*dim);
                    // First boundary strictly above v, minus one, gives the
                    // child whose [bounds[i], bounds[i+1]) contains v.
                    // Clamp for packets outside the node's range.
                    let idx = bounds
                        .partition_point(|&b| b <= v)
                        .saturating_sub(1)
                        .min(children.len() - 1);
                    id = children[idx];
                }
                NodeKind::Split { dim, threshold, children } => {
                    id = if packet.value(*dim) < *threshold { children[0] } else { children[1] };
                }
                NodeKind::Partition { children } => {
                    // All partitions must be consulted; highest precedence wins.
                    let mut best: Option<RuleId> = None;
                    for &c in children {
                        if let Some(r) = self.classify_from(c, packet) {
                            if best.is_none_or(|b| self.precedes(r, b)) {
                                best = Some(r);
                            }
                        }
                    }
                    return best;
                }
            }
        }
    }

    /// Filter `parent_rules` down to those intersecting `space`, into
    /// the reused `scratch` buffer. Expansion operations call this once
    /// per candidate child with one scratch per *step*, so child
    /// evaluation does not allocate; the surviving child then copies
    /// the scratch into a single exactly-sized `Vec` it owns.
    fn assign_rules_into(
        &self,
        parent_rules: &[RuleId],
        space: &NodeSpace,
        scratch: &mut Vec<RuleId>,
    ) {
        scratch.clear();
        scratch.extend(
            parent_rules
                .iter()
                .copied()
                .filter(|&r| self.active[r] && space.intersects_rule(&self.rules[r])),
        );
    }

    fn push_child(&mut self, parent: NodeId, space: NodeSpace, rules: Vec<RuleId>) -> NodeId {
        let depth = self.nodes[parent].depth + 1;
        let id = self.nodes.len();
        self.nodes.push(Node::leaf(space, rules, depth, Some(parent)));
        id
    }

    /// Apply an equal-size cut along `dim` into `ncuts` sub-ranges
    /// (HiCuts / NeuroCuts cut action). Returns the new children.
    ///
    /// # Panics
    /// Panics if the node is not a leaf or `ncuts < 2`.
    pub fn cut_node(&mut self, id: NodeId, dim: Dim, ncuts: usize) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(ncuts >= 2, "a cut needs at least 2 pieces");
        let spaces = self.nodes[id].space.cut(dim, ncuts);
        let parent_rules = std::mem::take(&mut self.nodes[id].rules);
        let mut scratch = Vec::with_capacity(parent_rules.len());
        let children: Vec<NodeId> = spaces
            .into_iter()
            .map(|s| {
                self.assign_rules_into(&parent_rules, &s, &mut scratch);
                let rules = scratch.as_slice().to_vec();
                self.push_child(id, s, rules)
            })
            .collect();
        self.nodes[id].rules = parent_rules;
        self.nodes[id].kind = NodeKind::Cut { dim, ncuts, children: children.clone() };
        self.bump_generation();
        children
    }

    /// Apply simultaneous cuts along several dimensions (HyperCuts).
    /// Children are created row-major in `dims` order.
    ///
    /// # Panics
    /// Panics if the node is not a leaf, `dims` is empty, contains a
    /// repeated dimension, or any count is `< 2`.
    pub fn multicut_node(&mut self, id: NodeId, dims: &[(Dim, usize)]) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(!dims.is_empty(), "multicut needs at least one dimension");
        assert!(dims.iter().all(|&(_, n)| n >= 2), "each cut needs >= 2 pieces");
        let mut seen = [false; classbench::NUM_DIMS];
        for &(d, _) in dims {
            assert!(!seen[d.index()], "dimension {d} repeated in multicut");
            seen[d.index()] = true;
        }
        let spaces = self.nodes[id].space.multi_cut(dims);
        let parent_rules = std::mem::take(&mut self.nodes[id].rules);
        let mut scratch = Vec::with_capacity(parent_rules.len());
        let children: Vec<NodeId> = spaces
            .into_iter()
            .map(|s| {
                self.assign_rules_into(&parent_rules, &s, &mut scratch);
                let rules = scratch.as_slice().to_vec();
                self.push_child(id, s, rules)
            })
            .collect();
        self.nodes[id].rules = parent_rules;
        self.nodes[id].kind =
            NodeKind::MultiCut { dims: dims.to_vec(), children: children.clone() };
        self.bump_generation();
        children
    }

    /// Apply an equi-dense cut at the explicit `bounds` (EffiCuts):
    /// child `i` covers `[bounds[i], bounds[i+1])` in `dim`.
    ///
    /// # Panics
    /// Panics if the node is not a leaf, the bounds are not strictly
    /// increasing, do not start/end exactly at the node's range, or
    /// would create fewer than two children.
    pub fn dense_cut_node(&mut self, id: NodeId, dim: Dim, bounds: Vec<u64>) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(bounds.len() >= 3, "dense cut needs at least two children");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must strictly increase");
        let range = *self.nodes[id].space.range(dim);
        assert_eq!(bounds[0], range.lo, "bounds must start at the node range");
        assert_eq!(*bounds.last().unwrap(), range.hi, "bounds must end at the node range");
        let parent_rules = std::mem::take(&mut self.nodes[id].rules);
        let mut scratch = Vec::with_capacity(parent_rules.len());
        let children: Vec<NodeId> = bounds
            .windows(2)
            .map(|w| {
                let mut space = self.nodes[id].space;
                space.ranges[dim.index()] = classbench::DimRange::new(w[0], w[1]);
                self.assign_rules_into(&parent_rules, &space, &mut scratch);
                let rules = scratch.as_slice().to_vec();
                self.push_child(id, space, rules)
            })
            .collect();
        self.nodes[id].rules = parent_rules;
        self.nodes[id].kind = NodeKind::DenseCut { dim, bounds, children: children.clone() };
        self.bump_generation();
        children
    }

    /// Apply a binary threshold split (HyperSplit / CutSplit):
    /// left child gets `[lo, threshold)`, right `[threshold, hi)`.
    ///
    /// # Panics
    /// Panics if the node is not a leaf or the threshold is outside the
    /// node's open range (which would create an empty child).
    pub fn split_node(&mut self, id: NodeId, dim: Dim, threshold: u64) -> (NodeId, NodeId) {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        let range = *self.nodes[id].space.range(dim);
        assert!(
            range.lo < threshold && threshold < range.hi,
            "threshold {threshold} outside open range {range}"
        );
        let (ls, rs) = self.nodes[id].space.split(dim, threshold);
        let parent_rules = std::mem::take(&mut self.nodes[id].rules);
        let mut scratch = Vec::with_capacity(parent_rules.len());
        self.assign_rules_into(&parent_rules, &ls, &mut scratch);
        let left_rules = scratch.as_slice().to_vec();
        self.assign_rules_into(&parent_rules, &rs, &mut scratch);
        let right_rules = scratch.as_slice().to_vec();
        let left = self.push_child(id, ls, left_rules);
        let right = self.push_child(id, rs, right_rules);
        self.nodes[id].rules = parent_rules;
        self.nodes[id].kind = NodeKind::Split { dim, threshold, children: [left, right] };
        self.bump_generation();
        (left, right)
    }

    /// Apply a rule partition: children share the node's space and own
    /// the given disjoint rule subsets.
    ///
    /// # Panics
    /// Panics if the node is not a leaf, fewer than two subsets are
    /// given, a subset is empty, or the subsets are not a disjoint cover
    /// of the node's rules.
    pub fn partition_node(&mut self, id: NodeId, subsets: Vec<Vec<RuleId>>) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(subsets.len() >= 2, "a partition needs at least 2 subsets");
        assert!(subsets.iter().all(|s| !s.is_empty()), "empty partition subset");
        let mut all: Vec<RuleId> = subsets.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut expected = self.nodes[id].rules.clone();
        expected.sort_unstable();
        assert_eq!(all, expected, "subsets must exactly cover the node's rules");

        let space = self.nodes[id].space;
        let children: Vec<NodeId> = subsets
            .into_iter()
            .map(|mut subset| {
                // Keep precedence order within each partition.
                subset.sort_by(|&a, &b| {
                    self.rules[b].priority.cmp(&self.rules[a].priority).then(a.cmp(&b))
                });
                self.push_child(id, space, subset)
            })
            .collect();
        self.nodes[id].kind = NodeKind::Partition { children: children.clone() };
        self.bump_generation();
        children
    }

    /// HiCuts' rule-overlap optimisation: once a rule fully covers the
    /// node's space, every packet reaching the node matches it, so all
    /// lower-precedence rules at the node are unreachable and are
    /// dropped. Returns how many rules were removed.
    pub fn truncate_covered(&mut self, id: NodeId) -> usize {
        let node = &self.nodes[id];
        let cover = node
            .rules
            .iter()
            .position(|&r| self.active[r] && node.space.covered_by_rule(&self.rules[r]));
        match cover {
            Some(pos) if pos + 1 < node.rules.len() => {
                let removed = node.rules.len() - pos - 1;
                self.nodes[id].rules.truncate(pos + 1);
                self.bump_generation();
                removed
            }
            _ => 0,
        }
    }

    pub(crate) fn push_rule_impl(&mut self, rule: Rule) -> RuleId {
        let id = self.rules.len();
        self.rules.push(rule);
        self.active.push(true);
        self.num_active += 1;
        self.bump_generation();
        id
    }

    /// Insert `id` into a leaf's rule list at its precedence position.
    pub(crate) fn leaf_insert_sorted(&mut self, node: NodeId, id: RuleId) {
        debug_assert!(self.nodes[node].is_leaf());
        let pos = self.nodes[node]
            .rules
            .iter()
            .position(|&r| self.precedes(id, r))
            .unwrap_or(self.nodes[node].rules.len());
        self.nodes[node].rules.insert(pos, id);
        self.bump_generation();
    }

    /// Remove `id` from a leaf's rule list if present.
    pub(crate) fn leaf_remove(&mut self, node: NodeId, id: RuleId) {
        debug_assert!(self.nodes[node].is_leaf());
        self.nodes[node].rules.retain(|&r| r != id);
        self.bump_generation();
    }

    /// Mark a rule deleted.
    pub(crate) fn deactivate_rule(&mut self, id: RuleId) {
        if self.active[id] {
            self.num_active -= 1;
        }
        self.active[id] = false;
        self.bump_generation();
    }

    /// Serialise the full tree (rule arena + nodes) to JSON — the
    /// deployment format: a built classifier can be shipped to and
    /// loaded by any process without retraining.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tree serialises")
    }

    /// Load a tree saved by [`Self::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Iterate over the ids of all current leaf nodes.
    pub fn leaf_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf())
    }

    /// Iterate over the ids of all internal (expanded) nodes.
    pub fn internal_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(|&i| !self.nodes[i].is_leaf())
    }

    /// True when the node holds at most `binth` rules (the standard
    /// leaf-termination condition in all the cutting papers).
    pub fn is_terminal(&self, id: NodeId, binth: usize) -> bool {
        self.nodes[id].rules.len() <= binth
    }

    /// True when cutting `dim` could still separate the node's rules:
    /// the node's range in `dim` can be cut (length ≥ 2) and at least
    /// two active rules have different projections onto it (clipped to
    /// the node's space). Cutting a non-separable dimension replicates
    /// every rule into some child for no discrimination gain.
    pub fn dim_separable(&self, id: NodeId, dim: Dim) -> bool {
        let node = &self.nodes[id];
        let space = node.space.range(dim);
        if space.len() < 2 {
            return false;
        }
        let mut actives = node.rules.iter().filter(|&&r| self.active[r]);
        let Some(&first) = actives.next() else { return false };
        let head = self.rules[first].range(dim).intersect(space);
        node.rules
            .iter()
            .filter(|&&r| self.active[r])
            .any(|&r| self.rules[r].range(dim).intersect(space) != head)
    }

    /// True when some cut could still separate the node's rules (see
    /// [`Self::dim_separable`]). When false, no sequence of cuts can
    /// ever shrink the rule list — every tree builder must treat the
    /// node as terminal or recurse forever.
    pub fn is_separable(&self, id: NodeId) -> bool {
        classbench::DIMS.iter().any(|&d| self.dim_separable(id, d))
    }

    /// True when cutting would make progress: at least one child would
    /// hold strictly fewer rules than the node. Builders use this to
    /// avoid infinite recursion when every rule spans the whole node.
    pub fn cut_makes_progress(&self, id: NodeId, dim: Dim, ncuts: usize) -> bool {
        let node = &self.nodes[id];
        node.space.cut(dim, ncuts).iter().any(|s| {
            node.rules
                .iter()
                .filter(|&&r| self.active[r] && s.intersects_rule(&self.rules[r]))
                .count()
                < node.rules.len()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, DimRange, GeneratorConfig};

    fn small_rules() -> RuleSet {
        let mut r_tcp = Rule::default_rule(2);
        r_tcp.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let mut r_low = Rule::default_rule(1);
        r_low.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        let r_def = Rule::default_rule(0);
        RuleSet::new(vec![r_tcp, r_low, r_def])
    }

    #[test]
    fn fresh_tree_is_single_leaf_with_all_rules() {
        let rs = small_rules();
        let t = DecisionTree::new(&rs);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.node(t.root()).rules, vec![0, 1, 2]);
        assert_eq!(t.num_active_rules(), 3);
        assert!(t.node(t.root()).is_leaf());
    }

    #[test]
    fn classify_on_unexpanded_root_equals_linear_scan() {
        let rs = small_rules();
        let t = DecisionTree::new(&rs);
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(t.classify(&p), Some(0)); // TCP rule
        assert_eq!(t.classify(&p), t.linear_classify(&p));
        let p = Packet::new(1, 2, 3, 500, 17);
        assert_eq!(t.classify(&p), Some(1)); // low dst port
        let p = Packet::new(1, 2, 3, 5000, 17);
        assert_eq!(t.classify(&p), Some(2)); // default
    }

    #[test]
    fn cut_assigns_rules_by_intersection() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        assert_eq!(kids.len(), 4);
        // Child 0 covers dst ports [0, 16384): all three rules intersect.
        assert_eq!(t.node(kids[0]).rules.len(), 3);
        // Children 1..4 exclude [0, 1024): the low-port rule drops out.
        for &k in &kids[1..] {
            assert_eq!(t.node(k).rules, vec![0, 2]);
            assert_eq!(t.node(k).depth, 1);
            assert_eq!(t.node(k).parent, Some(t.root()));
        }
        // Lookup still agrees with the linear scan.
        let p = Packet::new(0, 0, 0, 800, 17);
        assert_eq!(t.classify(&p), Some(1));
        let p = Packet::new(0, 0, 0, 40000, 6);
        assert_eq!(t.classify(&p), Some(0));
    }

    #[test]
    fn multicut_row_major_lookup() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.multicut_node(t.root(), &[(Dim::DstPort, 2), (Dim::Proto, 2)]);
        assert_eq!(kids.len(), 4);
        // proto=6 < 128 -> inner index 0; dstport 40000 -> outer index 1.
        let p = Packet::new(0, 0, 0, 40000, 6);
        assert_eq!(t.classify(&p), Some(0));
        let p = Packet::new(0, 0, 0, 100, 200);
        assert_eq!(t.classify(&p), Some(1));
    }

    #[test]
    fn dense_cut_routes_by_boundary() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.dense_cut_node(t.root(), Dim::DstPort, vec![0, 1024, 8192, 65536]);
        assert_eq!(kids.len(), 3);
        assert_eq!(t.node(kids[0]).rules, vec![0, 1, 2]);
        assert_eq!(t.node(kids[1]).rules, vec![0, 2]);
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1023, 17)), Some(1));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1024, 17)), Some(2));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 60000, 6)), Some(0));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn dense_cut_rejects_unsorted_bounds() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.dense_cut_node(t.root(), Dim::DstPort, vec![0, 9000, 1024, 65536]);
    }

    #[test]
    fn split_routes_by_threshold() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let (l, r) = t.split_node(t.root(), Dim::DstPort, 1024);
        assert_eq!(t.node(l).rules, vec![0, 1, 2]);
        assert_eq!(t.node(r).rules, vec![0, 2]);
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1023, 17)), Some(1));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1024, 17)), Some(2));
    }

    #[test]
    #[should_panic(expected = "outside open range")]
    fn split_at_boundary_panics() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.split_node(t.root(), Dim::DstPort, 0);
    }

    #[test]
    fn partition_searches_all_children() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.partition_node(t.root(), vec![vec![1], vec![0, 2]]);
        assert_eq!(kids.len(), 2);
        // Match in the second partition child, but rule 1 (other child)
        // has higher precedence for low ports.
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 100, 6)), Some(0));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 100, 17)), Some(1));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 9999, 17)), Some(2));
    }

    #[test]
    #[should_panic(expected = "exactly cover")]
    fn partition_must_cover_rules() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.partition_node(t.root(), vec![vec![0], vec![1]]); // missing rule 2
    }

    #[test]
    #[should_panic(expected = "already expanded")]
    fn double_expansion_panics() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.cut_node(t.root(), Dim::Proto, 2);
        t.cut_node(t.root(), Dim::Proto, 2);
    }

    #[test]
    fn truncate_covered_drops_unreachable_rules() {
        // Highest-precedence rule covers protocols [0, 128); after
        // cutting proto in two, it fully covers the left child's space,
        // making the two lower-precedence rules unreachable there.
        let mut r_cover = Rule::default_rule(2);
        r_cover.ranges[Dim::Proto.index()] = DimRange::new(0, 128);
        let mut r_low = Rule::default_rule(1);
        r_low.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        let rs = RuleSet::new(vec![r_cover, r_low, Rule::default_rule(0)]);
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::Proto, 2);
        assert_eq!(t.node(kids[0]).rules, vec![0, 1, 2]);
        let removed = t.truncate_covered(kids[0]);
        assert_eq!(removed, 2);
        assert_eq!(t.node(kids[0]).rules, vec![0]);
        // Classification through the truncated node is still correct.
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 9999, 6)), Some(0));
        // The untouched right child still resolves to the default rule.
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 9999, 200)), Some(2));
    }

    #[test]
    fn cut_makes_progress_detection() {
        let rs = small_rules();
        let t = DecisionTree::new(&rs);
        // All three rules are full-width in SrcIp: cutting there cannot
        // separate them.
        assert!(!t.cut_makes_progress(t.root(), Dim::SrcIp, 8));
        // Cutting DstPort separates the low-port rule.
        assert!(t.cut_makes_progress(t.root(), Dim::DstPort, 8));
    }

    #[test]
    fn generated_rules_classify_consistently() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(3));
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::SrcIp, 16);
        for k in kids {
            if !t.is_terminal(k, 8) {
                t.cut_node(k, Dim::DstIp, 4);
            }
        }
        let trace = classbench::generate_trace(&rs, &classbench::TraceConfig::new(300));
        for p in &trace {
            assert_eq!(t.classify(p), rs.classify(p), "packet {p}");
        }
    }

    #[test]
    fn classify_traced_counts_path_nodes() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        t.cut_node(kids[0], Dim::Proto, 2);
        // Path through the expanded child: root + cut child + leaf = 3.
        let (r, visited) = t.classify_traced(&Packet::new(0, 0, 0, 100, 6));
        assert_eq!(r, Some(0));
        assert_eq!(visited, 3);
        // Path through an unexpanded child: root + leaf = 2.
        let (_, visited) = t.classify_traced(&Packet::new(0, 0, 0, 50000, 6));
        assert_eq!(visited, 2);
        // classify_traced agrees with classify.
        let p = Packet::new(0, 0, 0, 500, 17);
        assert_eq!(t.classify_traced(&p).0, t.classify(&p));
    }

    #[test]
    fn classify_traced_counts_all_partitions() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.partition_node(t.root(), vec![vec![0], vec![1, 2]]);
        // Root + both partition children are always consulted.
        let (_, visited) = t.classify_traced(&Packet::new(0, 0, 0, 0, 6));
        assert_eq!(visited, 3);
    }

    #[test]
    fn visit_counts_route_like_lookup() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::DstPort, 2);
        let trace = vec![
            Packet::new(0, 0, 0, 100, 6),   // low half
            Packet::new(0, 0, 0, 200, 17),  // low half
            Packet::new(0, 0, 0, 60000, 6), // high half
        ];
        let counts = t.node_visit_counts(&trace);
        assert_eq!(counts[t.root()], 3);
        assert_eq!(counts[kids[0]], 2);
        assert_eq!(counts[kids[1]], 1);
        // Totals match per-packet traced costs.
        let total: usize = counts.iter().sum();
        let traced: usize = trace.iter().map(|p| t.classify_traced(p).1).sum();
        assert_eq!(total, traced);
    }

    #[test]
    fn leaf_and_internal_iterators() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.cut_node(t.root(), Dim::Proto, 2);
        assert_eq!(t.leaf_ids().count(), 2);
        assert_eq!(t.internal_ids().count(), 1);
        assert_eq!(t.num_nodes(), 3);
    }
}
