//! The arena-backed decision tree and its expansion operations.

use crate::node::{Node, NodeId, NodeKind, RuleId, RuleSpan};
use crate::space::NodeSpace;
use crate::store::RuleStore;
use classbench::{Dim, DimRange, Packet, Rule, RuleSet, NUM_DIMS};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Bit set in the separability cache when a node's mask is computed.
const SEP_COMPUTED: u8 = 1 << 7;

/// A packet-classification decision tree.
///
/// The tree reads its rules from a **shared, immutable-by-sharing
/// [`RuleStore`]**: rule ids are indices that never shift, so
/// incremental updates (appending new rules, marking deletions) do not
/// invalidate the rule lists stored at leaves, and thousands of
/// episode trees built over the same rule set share one store instead
/// of deep-cloning it ([`DecisionTree::with_store`]). When constructed
/// with [`DecisionTree::new`] from a [`RuleSet`], rule ids equal the
/// rule set's priority-order indices, so `classify` results are
/// directly comparable with [`RuleSet::classify`].
///
/// Per-node rule lists live as `(start, len)` spans in one growable
/// per-tree pool, so expanding a node performs **zero per-child
/// allocations**: a counting pass sizes every child's span, one pool
/// `resize` reserves them, and a fill pass writes each rule into every
/// child it overlaps — O(parent rules × overlapped children) instead
/// of the old per-child rescans (O(parent rules × children × dims)).
///
/// Match precedence is *higher priority wins, ties broken by lower rule
/// id* — identical to the linear-scan ground truth.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    store: Arc<RuleStore>,
    active: Vec<bool>,
    /// Maintained count of `true` entries in `active`, so
    /// [`Self::num_active_rules`] is O(1) in reward/stats loops.
    num_active: usize,
    nodes: Vec<Node>,
    /// The shared rule-id pool all node spans index into.
    pool: Vec<RuleId>,
    root: NodeId,
    /// Lazily computed per-node separability masks (bit `d` = dimension
    /// `d` separable, [`SEP_COMPUTED`] = entry valid). Invalidated on
    /// any mutation of the node's rule list.
    sep_cache: Vec<u8>,
    /// Bumped on every structural or rule mutation (expansions,
    /// truncation, rule insertion/deletion). A compiled [`crate::FlatTree`]
    /// records the generation it was built from, so a snapshot that no
    /// longer reflects this tree is detectable ([`crate::FlatTree::is_stale`])
    /// instead of silently serving stale matches.
    generation: u64,
}

/// Hand-written so the JSON deployment format stays exactly the four
/// fields it has always been — `rules`, `active`, `nodes` (each node an
/// object with `space`/`rules`/`kind`/`depth`/`parent`, the per-node
/// rule lists materialised from the span pool), `root`. `num_active`,
/// `generation`, and the separability cache are derived state, never
/// serialised — trees saved by earlier versions load unchanged, a
/// loaded file cannot smuggle in a count that disagrees with `active`,
/// and a freshly loaded tree starts at generation 0.
impl Serialize for DecisionTree {
    fn serialize_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(
            "rules",
            serde::Value::Array(self.store.rules().iter().map(|r| r.serialize_value()).collect()),
        );
        map.insert("active", self.active.serialize_value());
        let nodes: Vec<serde::Value> = self
            .nodes
            .iter()
            .map(|n| {
                let mut m = serde::Map::new();
                m.insert("space", n.space.serialize_value());
                m.insert("rules", self.span_slice(n.span).to_vec().serialize_value());
                m.insert("kind", n.kind.serialize_value());
                m.insert("depth", n.depth.serialize_value());
                m.insert("parent", n.parent.serialize_value());
                serde::Value::Object(m)
            })
            .collect();
        map.insert("nodes", serde::Value::Array(nodes));
        map.insert("root", self.root.serialize_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for DecisionTree {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("DecisionTree: expected object"))?;
        let field = |name: &str| {
            obj.get(name).ok_or_else(|| {
                serde::Error::custom(format!("DecisionTree: missing field `{name}`"))
            })
        };
        let rules: Vec<Rule> = Deserialize::deserialize_value(field("rules")?)?;
        let active: Vec<bool> = Deserialize::deserialize_value(field("active")?)?;
        let node_values = field("nodes")?
            .as_array()
            .ok_or_else(|| serde::Error::custom("DecisionTree: `nodes` must be an array"))?;
        let mut pool = Vec::new();
        let mut nodes = Vec::with_capacity(node_values.len());
        for nv in node_values {
            let nobj = nv
                .as_object()
                .ok_or_else(|| serde::Error::custom("DecisionTree: node must be an object"))?;
            let nfield = |name: &str| {
                nobj.get(name).ok_or_else(|| {
                    serde::Error::custom(format!("DecisionTree: node missing field `{name}`"))
                })
            };
            let space: NodeSpace = Deserialize::deserialize_value(nfield("space")?)?;
            let rules: Vec<RuleId> = Deserialize::deserialize_value(nfield("rules")?)?;
            let kind: NodeKind = Deserialize::deserialize_value(nfield("kind")?)?;
            let depth: usize = Deserialize::deserialize_value(nfield("depth")?)?;
            let parent: Option<NodeId> = Deserialize::deserialize_value(nfield("parent")?)?;
            let span = RuleSpan { start: pool.len(), len: rules.len() };
            pool.extend(rules);
            nodes.push(Node { space, span, kind, depth, parent });
        }
        let root: NodeId = Deserialize::deserialize_value(field("root")?)?;
        let num_active = active.iter().filter(|&&a| a).count();
        let sep_cache = vec![0; nodes.len()];
        Ok(DecisionTree {
            store: Arc::new(RuleStore::from_rules(rules)),
            active,
            num_active,
            nodes,
            pool,
            root,
            sep_cache,
            generation: 0,
        })
    }
}

impl DecisionTree {
    /// Start a tree for `rules`: a single root leaf owning every rule
    /// and the full header space. Builds a private [`RuleStore`]; use
    /// [`Self::with_store`] to share one store across many trees.
    pub fn new(rules: &RuleSet) -> Self {
        Self::with_store(Arc::new(RuleStore::from_ruleset(rules)))
    }

    /// Start a tree over a shared rule store — the episode-construction
    /// fast path: no rules are copied, only the per-tree state (node
    /// arena, rule-id pool, active flags) is allocated.
    pub fn with_store(store: Arc<RuleStore>) -> Self {
        let n = store.len();
        let root = Node::leaf(NodeSpace::full(), RuleSpan { start: 0, len: n }, 0, None);
        DecisionTree {
            active: vec![true; n],
            num_active: n,
            store,
            nodes: vec![root],
            pool: (0..n).collect(),
            root: 0,
            sep_cache: vec![0],
            generation: 0,
        }
    }

    /// The shared rule store behind this tree.
    pub fn store(&self) -> &Arc<RuleStore> {
        &self.store
    }

    /// Rebuild a live tree's *structure* from an externally built
    /// `template` (e.g. a freshly retrained tree) while keeping the
    /// live tree `onto`'s rule arena, ids, and active flags.
    ///
    /// `map[i]` is the `onto`-arena id of template rule `i`: the
    /// template is built over a snapshot of `onto`'s active rules in
    /// priority order ([`crate::serve::ClassifierHandle::rule_snapshot`]),
    /// and the graft copies the template's node arena verbatim while
    /// remapping every leaf rule list through `map`. Because the
    /// snapshot order is a stable sort by descending priority, equal
    /// priorities keep ascending-handle-id order, so the template's
    /// (priority, lower-id) precedence maps exactly onto the live
    /// arena's — leaf lists stay in serving precedence order.
    ///
    /// The grafted tree's generation starts one past `onto`'s, so every
    /// [`crate::FlatTree`] compiled from the old tree is immediately
    /// detectable as stale.
    ///
    /// # Panics
    /// Panics if `map` does not cover the template's rules exactly or
    /// names ids outside `onto`'s arena.
    pub fn graft(template: &DecisionTree, map: &[RuleId], onto: &DecisionTree) -> DecisionTree {
        assert_eq!(template.store.len(), map.len(), "map must cover every template rule");
        assert!(map.iter().all(|&id| id < onto.store.len()), "map id outside the target arena");
        DecisionTree {
            store: Arc::clone(&onto.store),
            active: onto.active.clone(),
            num_active: onto.num_active,
            nodes: template.nodes.clone(),
            pool: template.pool.iter().map(|&r| map[r]).collect(),
            root: template.root,
            sep_cache: vec![0; template.nodes.len()],
            generation: onto.generation + 1,
        }
    }

    /// Monotonic mutation counter: any expansion, truncation, or rule
    /// update advances it. Compare with [`crate::FlatTree::generation`]
    /// to detect stale compiled snapshots.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record a mutation (see [`Self::generation`]).
    #[inline]
    fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node arena (all nodes ever created, in creation order).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The rule arena (including deleted rules; see [`Self::is_active`]).
    pub fn rules(&self) -> &[Rule] {
        self.store.rules()
    }

    /// Borrow a rule by id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        self.store.rule(id)
    }

    #[inline]
    fn span_slice(&self, span: RuleSpan) -> &[RuleId] {
        &self.pool[span.start..span.start + span.len]
    }

    /// The rule ids stored at a node, in precedence order.
    #[inline]
    pub fn rules_at(&self, id: NodeId) -> &[RuleId] {
        self.span_slice(self.nodes[id].span)
    }

    /// True while the rule has not been deleted by an update.
    pub fn is_active(&self, id: RuleId) -> bool {
        self.active[id]
    }

    /// Number of non-deleted rules. O(1): the count is maintained by
    /// rule insertion and deletion rather than scanned on demand.
    pub fn num_active_rules(&self) -> usize {
        debug_assert_eq!(self.num_active, self.active.iter().filter(|&&a| a).count());
        self.num_active
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if rule `a` takes precedence over rule `b`.
    #[inline]
    pub fn precedes(&self, a: RuleId, b: RuleId) -> bool {
        let (pa, pb) = (self.store.rule(a).priority, self.store.rule(b).priority);
        pa > pb || (pa == pb && a < b)
    }

    /// Ground-truth linear scan over the arena (used by the validator
    /// and as the reference for incremental updates).
    pub fn linear_classify(&self, packet: &Packet) -> Option<RuleId> {
        let mut best: Option<RuleId> = None;
        for (id, rule) in self.store.rules().iter().enumerate() {
            if self.active[id] && rule.matches(packet) && best.is_none_or(|b| self.precedes(id, b))
            {
                best = Some(id);
            }
        }
        best
    }

    /// Index of the child a packet descends into under an equal-size cut
    /// of `range` into `ncuts` pieces. Clamped, so packets outside the
    /// (possibly region-compacted) range map to the nearest child; leaf
    /// matching re-checks full rule predicates, preserving correctness.
    #[inline]
    fn cut_child_index(range: &classbench::DimRange, ncuts: usize, value: u64) -> usize {
        let step = (range.len() / ncuts as u64).max(1);
        ((value.saturating_sub(range.lo)) / step).min(ncuts as u64 - 1) as usize
    }

    /// Classify a packet: id of the highest-precedence matching rule.
    pub fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.classify_from(self.root, packet)
    }

    /// Classify and report the lookup cost: the number of nodes visited,
    /// counting every consulted partition child subtree (the same
    /// accounting as Eq. 1/3, but for this packet's actual path rather
    /// than the worst case). Used for traffic-aware objectives (§8).
    pub fn classify_traced(&self, packet: &Packet) -> (Option<RuleId>, usize) {
        let mut visited = 0usize;
        let result = self.classify_traced_from(self.root, packet, &mut visited);
        (result, visited)
    }

    fn classify_traced_from(
        &self,
        mut id: NodeId,
        packet: &Packet,
        visited: &mut usize,
    ) -> Option<RuleId> {
        loop {
            *visited += 1;
            let node = &self.nodes[id];
            match &node.kind {
                NodeKind::Leaf => {
                    return self
                        .span_slice(node.span)
                        .iter()
                        .copied()
                        .find(|&r| self.active[r] && self.store.rule(r).matches(packet));
                }
                NodeKind::Partition { children } => {
                    let mut best: Option<RuleId> = None;
                    for &c in children {
                        if let Some(r) = self.classify_traced_from(c, packet, visited) {
                            if best.is_none_or(|b| self.precedes(r, b)) {
                                best = Some(r);
                            }
                        }
                    }
                    return best;
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let idx =
                        Self::cut_child_index(node.space.range(*dim), *ncuts, packet.value(*dim));
                    id = children[idx];
                }
                NodeKind::MultiCut { dims, children } => {
                    let mut idx = 0usize;
                    for &(dim, ncuts) in dims {
                        let i =
                            Self::cut_child_index(node.space.range(dim), ncuts, packet.value(dim));
                        idx = idx * ncuts + i;
                    }
                    id = children[idx];
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let v = packet.value(*dim);
                    let idx = bounds
                        .partition_point(|&b| b <= v)
                        .saturating_sub(1)
                        .min(children.len() - 1);
                    id = children[idx];
                }
                NodeKind::Split { dim, threshold, children } => {
                    id = if packet.value(*dim) < *threshold { children[0] } else { children[1] };
                }
            }
        }
    }

    /// How many packets of `trace` pass through each node during lookup
    /// (partition children each see every packet their parent sees).
    /// Index-aligned with the node arena.
    pub fn node_visit_counts(&self, trace: &[Packet]) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for packet in trace {
            self.count_visits(self.root, packet, &mut counts);
        }
        counts
    }

    fn count_visits(&self, mut id: NodeId, packet: &Packet, counts: &mut [usize]) {
        loop {
            counts[id] += 1;
            let node = &self.nodes[id];
            match &node.kind {
                NodeKind::Leaf => return,
                NodeKind::Partition { children } => {
                    for &c in children {
                        self.count_visits(c, packet, counts);
                    }
                    return;
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let idx =
                        Self::cut_child_index(node.space.range(*dim), *ncuts, packet.value(*dim));
                    id = children[idx];
                }
                NodeKind::MultiCut { dims, children } => {
                    let mut idx = 0usize;
                    for &(dim, ncuts) in dims {
                        let i =
                            Self::cut_child_index(node.space.range(dim), ncuts, packet.value(dim));
                        idx = idx * ncuts + i;
                    }
                    id = children[idx];
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let v = packet.value(*dim);
                    let idx = bounds
                        .partition_point(|&b| b <= v)
                        .saturating_sub(1)
                        .min(children.len() - 1);
                    id = children[idx];
                }
                NodeKind::Split { dim, threshold, children } => {
                    id = if packet.value(*dim) < *threshold { children[0] } else { children[1] };
                }
            }
        }
    }

    fn classify_from(&self, mut id: NodeId, packet: &Packet) -> Option<RuleId> {
        loop {
            let node = &self.nodes[id];
            match &node.kind {
                NodeKind::Leaf => {
                    return self
                        .span_slice(node.span)
                        .iter()
                        .copied()
                        .find(|&r| self.active[r] && self.store.rule(r).matches(packet));
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let idx =
                        Self::cut_child_index(node.space.range(*dim), *ncuts, packet.value(*dim));
                    id = children[idx];
                }
                NodeKind::MultiCut { dims, children } => {
                    let mut idx = 0usize;
                    for &(dim, ncuts) in dims {
                        let i =
                            Self::cut_child_index(node.space.range(dim), ncuts, packet.value(dim));
                        idx = idx * ncuts + i;
                    }
                    id = children[idx];
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let v = packet.value(*dim);
                    // First boundary strictly above v, minus one, gives the
                    // child whose [bounds[i], bounds[i+1]) contains v.
                    // Clamp for packets outside the node's range.
                    let idx = bounds
                        .partition_point(|&b| b <= v)
                        .saturating_sub(1)
                        .min(children.len() - 1);
                    id = children[idx];
                }
                NodeKind::Split { dim, threshold, children } => {
                    id = if packet.value(*dim) < *threshold { children[0] } else { children[1] };
                }
                NodeKind::Partition { children } => {
                    // All partitions must be consulted; highest precedence wins.
                    let mut best: Option<RuleId> = None;
                    for &c in children {
                        if let Some(r) = self.classify_from(c, packet) {
                            if best.is_none_or(|b| self.precedes(r, b)) {
                                best = Some(r);
                            }
                        }
                    }
                    return best;
                }
            }
        }
    }

    /// Inclusive child-index range a rule with raw projection
    /// `[rl, rh)` overlaps under an equal-size cut of `range` into
    /// `ncuts` pieces with the given `step`. Matches the per-child
    /// `DimRange::overlaps` filter exactly, including the degenerate
    /// tail (ranges shorter than `ncuts` produce empty trailing
    /// children anchored at `range.hi`, which a rule extending past
    /// `range.hi` *does* overlap under the half-open predicate).
    #[inline]
    fn cut_span_of(range: &DimRange, step: u64, ncuts: usize, rl: u64, rh: u64) -> (usize, usize) {
        let first = ((rl.max(range.lo) - range.lo) / step).min(ncuts as u64 - 1) as usize;
        let last = if rh > range.hi {
            ncuts - 1
        } else {
            (((rh - 1).max(range.lo) - range.lo) / step).min(ncuts as u64 - 1) as usize
        };
        (first, last)
    }

    /// Single-pass child assignment: size every child's span (counting
    /// pass), reserve them contiguously in the pool, then write each
    /// active, parent-intersecting rule into the children reported by
    /// `children_of` (inclusive index range). Rules land in each child
    /// in parent order, so child lists are exactly the old per-child
    /// filter's output. Zero allocations besides the single pool grow
    /// and the per-child bookkeeping.
    fn assign_spans(
        &mut self,
        id: NodeId,
        nchildren: usize,
        children_of: impl Fn(&RuleStore, RuleId) -> (usize, usize),
    ) -> Vec<RuleSpan> {
        let parent = self.nodes[id].span;
        let space = self.nodes[id].space;
        let mut counts = vec![0usize; nchildren];
        for i in parent.start..parent.start + parent.len {
            let r = self.pool[i];
            if !self.active[r] || !self.store.intersects(r, &space) {
                continue;
            }
            let (first, last) = children_of(&self.store, r);
            for c in &mut counts[first..=last] {
                *c += 1;
            }
        }
        let mut spans = Vec::with_capacity(nchildren);
        let mut cursors = Vec::with_capacity(nchildren);
        let mut offset = self.pool.len();
        for &c in &counts {
            spans.push(RuleSpan { start: offset, len: c });
            cursors.push(offset);
            offset += c;
        }
        self.pool.resize(offset, 0);
        for i in parent.start..parent.start + parent.len {
            let r = self.pool[i];
            if !self.active[r] || !self.store.intersects(r, &space) {
                continue;
            }
            let (first, last) = children_of(&self.store, r);
            for cur in &mut cursors[first..=last] {
                self.pool[*cur] = r;
                *cur += 1;
            }
        }
        spans
    }

    fn push_child(&mut self, parent: NodeId, space: NodeSpace, span: RuleSpan) -> NodeId {
        let depth = self.nodes[parent].depth + 1;
        let id = self.nodes.len();
        self.nodes.push(Node::leaf(space, span, depth, Some(parent)));
        self.sep_cache.push(0);
        id
    }

    /// Apply an equal-size cut along `dim` into `ncuts` sub-ranges
    /// (HiCuts / NeuroCuts cut action). Returns the new children.
    ///
    /// # Panics
    /// Panics if the node is not a leaf or `ncuts < 2`.
    pub fn cut_node(&mut self, id: NodeId, dim: Dim, ncuts: usize) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(ncuts >= 2, "a cut needs at least 2 pieces");
        let range = *self.nodes[id].space.range(dim);
        let step = (range.len() / ncuts as u64).max(1);
        let d = dim.index();
        let spans = self.assign_spans(id, ncuts, |store, r| {
            let (rl, rh) = store.proj(d, r);
            Self::cut_span_of(&range, step, ncuts, rl, rh)
        });
        let spaces = self.nodes[id].space.cut(dim, ncuts);
        let children: Vec<NodeId> =
            spaces.into_iter().zip(spans).map(|(s, span)| self.push_child(id, s, span)).collect();
        self.nodes[id].kind = NodeKind::Cut { dim, ncuts, children: children.clone() };
        self.bump_generation();
        children
    }

    /// Apply simultaneous cuts along several dimensions (HyperCuts).
    /// Children are created row-major in `dims` order.
    ///
    /// # Panics
    /// Panics if the node is not a leaf, `dims` is empty, contains a
    /// repeated dimension, or any count is `< 2`.
    pub fn multicut_node(&mut self, id: NodeId, dims: &[(Dim, usize)]) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(!dims.is_empty(), "multicut needs at least one dimension");
        assert!(dims.iter().all(|&(_, n)| n >= 2), "each cut needs >= 2 pieces");
        let mut seen = [false; NUM_DIMS];
        for &(d, _) in dims {
            assert!(!seen[d.index()], "dimension {d} repeated in multicut");
            seen[d.index()] = true;
        }
        let specs: Vec<(usize, DimRange, u64, usize)> = dims
            .iter()
            .map(|&(dim, n)| {
                let range = *self.nodes[id].space.range(dim);
                (dim.index(), range, (range.len() / n as u64).max(1), n)
            })
            .collect();
        let nchildren: usize = dims.iter().map(|&(_, n)| n).product();
        // Row-major composite index: the first dimension is the most
        // significant digit, matching `NodeSpace::multi_cut` and the
        // lookup path. A single-dim multicut degenerates to the plain
        // cut assignment; true multi-dim cuts enumerate the Cartesian
        // product of each rule's per-dimension index ranges.
        let spans = if let [(d, range, step, n)] = specs[..] {
            self.assign_spans(id, nchildren, |store, r| {
                let (rl, rh) = store.proj(d, r);
                Self::cut_span_of(&range, step, n, rl, rh)
            })
        } else {
            self.multi_spans(id, &specs, nchildren)
        };
        let spaces = self.nodes[id].space.multi_cut(dims);
        let children: Vec<NodeId> =
            spaces.into_iter().zip(spans).map(|(s, span)| self.push_child(id, s, span)).collect();
        self.nodes[id].kind =
            NodeKind::MultiCut { dims: dims.to_vec(), children: children.clone() };
        self.bump_generation();
        children
    }

    /// Enumerate the composite (row-major) child indices rule `r`
    /// overlaps under a multi-dimension cut and invoke `visit` on each.
    fn for_each_multi_child(
        store: &RuleStore,
        specs: &[(usize, DimRange, u64, usize)],
        r: RuleId,
        mut visit: impl FnMut(usize),
    ) {
        let k = specs.len();
        let mut first = [0usize; NUM_DIMS];
        let mut last = [0usize; NUM_DIMS];
        for (i, &(d, range, step, n)) in specs.iter().enumerate() {
            let (rl, rh) = store.proj(d, r);
            let (f, l) = Self::cut_span_of(&range, step, n, rl, rh);
            first[i] = f;
            last[i] = l;
        }
        // Odometer over the per-dimension index ranges.
        let mut idx = first;
        loop {
            let mut composite = 0usize;
            for (i, &(_, _, _, n)) in specs.iter().enumerate() {
                composite = composite * n + idx[i];
            }
            visit(composite);
            let mut dim = k;
            loop {
                if dim == 0 {
                    return;
                }
                dim -= 1;
                if idx[dim] < last[dim] {
                    idx[dim] += 1;
                    break;
                }
                idx[dim] = first[dim];
            }
        }
    }

    /// The multi-dimension analogue of [`Self::assign_spans`]: counting
    /// pass + fill pass over composite child indices.
    fn multi_spans(
        &mut self,
        id: NodeId,
        specs: &[(usize, DimRange, u64, usize)],
        nchildren: usize,
    ) -> Vec<RuleSpan> {
        let parent = self.nodes[id].span;
        let space = self.nodes[id].space;
        let mut counts = vec![0usize; nchildren];
        for i in parent.start..parent.start + parent.len {
            let r = self.pool[i];
            if !self.active[r] || !self.store.intersects(r, &space) {
                continue;
            }
            Self::for_each_multi_child(&self.store, specs, r, |c| counts[c] += 1);
        }
        let mut spans = Vec::with_capacity(nchildren);
        let mut cursors = Vec::with_capacity(nchildren);
        let mut offset = self.pool.len();
        for &c in &counts {
            spans.push(RuleSpan { start: offset, len: c });
            cursors.push(offset);
            offset += c;
        }
        self.pool.resize(offset, 0);
        let store = Arc::clone(&self.store);
        for i in parent.start..parent.start + parent.len {
            let r = self.pool[i];
            if !self.active[r] || !store.intersects(r, &space) {
                continue;
            }
            let pool = &mut self.pool;
            Self::for_each_multi_child(&store, specs, r, |c| {
                pool[cursors[c]] = r;
                cursors[c] += 1;
            });
        }
        spans
    }

    /// Apply an equi-dense cut at the explicit `bounds` (EffiCuts):
    /// child `i` covers `[bounds[i], bounds[i+1])` in `dim`.
    ///
    /// # Panics
    /// Panics if the node is not a leaf, the bounds are not strictly
    /// increasing, do not start/end exactly at the node's range, or
    /// would create fewer than two children.
    pub fn dense_cut_node(&mut self, id: NodeId, dim: Dim, bounds: Vec<u64>) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(bounds.len() >= 3, "dense cut needs at least two children");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must strictly increase");
        let range = *self.nodes[id].space.range(dim);
        assert_eq!(bounds[0], range.lo, "bounds must start at the node range");
        assert_eq!(*bounds.last().unwrap(), range.hi, "bounds must end at the node range");
        let d = dim.index();
        let nchildren = bounds.len() - 1;
        let spans = self.assign_spans(id, nchildren, |store, r| {
            let (rl, rh) = store.proj(d, r);
            // First child whose upper bound exceeds the rule's start;
            // last child whose lower bound the rule's end exceeds.
            let first = bounds[1..].partition_point(|&b| b <= rl).min(nchildren - 1);
            let last = bounds[..nchildren].partition_point(|&b| b < rh).saturating_sub(1);
            (first, last)
        });
        let children: Vec<NodeId> = bounds
            .windows(2)
            .zip(spans)
            .map(|(w, span)| {
                let mut space = self.nodes[id].space;
                space.ranges[d] = DimRange::new(w[0], w[1]);
                self.push_child(id, space, span)
            })
            .collect();
        self.nodes[id].kind = NodeKind::DenseCut { dim, bounds, children: children.clone() };
        self.bump_generation();
        children
    }

    /// Apply a binary threshold split (HyperSplit / CutSplit):
    /// left child gets `[lo, threshold)`, right `[threshold, hi)`.
    ///
    /// # Panics
    /// Panics if the node is not a leaf or the threshold is outside the
    /// node's open range (which would create an empty child).
    pub fn split_node(&mut self, id: NodeId, dim: Dim, threshold: u64) -> (NodeId, NodeId) {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        let range = *self.nodes[id].space.range(dim);
        assert!(
            range.lo < threshold && threshold < range.hi,
            "threshold {threshold} outside open range {range}"
        );
        let d = dim.index();
        let spans = self.assign_spans(id, 2, |store, r| {
            let (rl, rh) = store.proj(d, r);
            (if rl < threshold { 0 } else { 1 }, if rh > threshold { 1 } else { 0 })
        });
        let (ls, rs) = self.nodes[id].space.split(dim, threshold);
        let left = self.push_child(id, ls, spans[0]);
        let right = self.push_child(id, rs, spans[1]);
        self.nodes[id].kind = NodeKind::Split { dim, threshold, children: [left, right] };
        self.bump_generation();
        (left, right)
    }

    /// Apply a rule partition: children share the node's space and own
    /// the given disjoint rule subsets.
    ///
    /// # Panics
    /// Panics if the node is not a leaf, fewer than two subsets are
    /// given, or a subset is empty. That the subsets exactly cover the
    /// node's rules is asserted in debug builds only — the O(n log n)
    /// sort-and-compare was measurable on every partition node of the
    /// training hot path, and both in-tree planners construct subsets
    /// by partitioning the node's own list.
    pub fn partition_node(&mut self, id: NodeId, subsets: Vec<Vec<RuleId>>) -> Vec<NodeId> {
        assert!(self.nodes[id].is_leaf(), "node {id} already expanded");
        assert!(subsets.len() >= 2, "a partition needs at least 2 subsets");
        assert!(subsets.iter().all(|s| !s.is_empty()), "empty partition subset");
        debug_assert!(
            {
                let mut all: Vec<RuleId> = subsets.iter().flatten().copied().collect();
                all.sort_unstable();
                let mut expected = self.rules_at(id).to_vec();
                expected.sort_unstable();
                all == expected
            },
            "subsets must exactly cover the node's rules"
        );

        let space = self.nodes[id].space;
        let children: Vec<NodeId> = subsets
            .into_iter()
            .map(|mut subset| {
                // Keep precedence order within each partition.
                subset.sort_by(|&a, &b| {
                    let (pa, pb) = (self.store.rule(a).priority, self.store.rule(b).priority);
                    pb.cmp(&pa).then(a.cmp(&b))
                });
                let span = RuleSpan { start: self.pool.len(), len: subset.len() };
                self.pool.extend_from_slice(&subset);
                self.push_child(id, space, span)
            })
            .collect();
        self.nodes[id].kind = NodeKind::Partition { children: children.clone() };
        self.bump_generation();
        children
    }

    /// HiCuts' rule-overlap optimisation: once a rule fully covers the
    /// node's space, every packet reaching the node matches it, so all
    /// lower-precedence rules at the node are unreachable and are
    /// dropped. Returns how many rules were removed.
    pub fn truncate_covered(&mut self, id: NodeId) -> usize {
        let node = &self.nodes[id];
        let space = node.space;
        let cover = self
            .span_slice(node.span)
            .iter()
            .position(|&r| self.active[r] && self.store.covers(r, &space));
        match cover {
            Some(pos) if pos + 1 < self.nodes[id].span.len => {
                let removed = self.nodes[id].span.len - pos - 1;
                self.nodes[id].span.len = pos + 1;
                self.sep_cache[id] = 0;
                self.bump_generation();
                removed
            }
            _ => 0,
        }
    }

    pub(crate) fn push_rule_impl(&mut self, rule: Rule) -> RuleId {
        let id = Arc::make_mut(&mut self.store).push(rule);
        self.active.push(true);
        self.num_active += 1;
        self.bump_generation();
        id
    }

    /// Insert `id` into a leaf's rule list at its precedence position.
    /// The list is re-homed at the end of the pool (spans are append-
    /// only windows); the old window becomes garbage until the next
    /// rebuild folds it away.
    pub(crate) fn leaf_insert_sorted(&mut self, node: NodeId, id: RuleId) {
        debug_assert!(self.nodes[node].is_leaf());
        let span = self.nodes[node].span;
        let pos =
            self.span_slice(span).iter().position(|&r| self.precedes(id, r)).unwrap_or(span.len);
        let start = self.pool.len();
        self.pool.reserve(span.len + 1);
        self.pool.extend_from_within(span.start..span.start + pos);
        self.pool.push(id);
        self.pool.extend_from_within(span.start + pos..span.start + span.len);
        self.nodes[node].span = RuleSpan { start, len: span.len + 1 };
        self.sep_cache[node] = 0;
        self.bump_generation();
    }

    /// Remove `id` from a leaf's rule list if present (in-place span
    /// compaction).
    pub(crate) fn leaf_remove(&mut self, node: NodeId, id: RuleId) {
        debug_assert!(self.nodes[node].is_leaf());
        let span = self.nodes[node].span;
        let mut w = span.start;
        for i in span.start..span.start + span.len {
            let r = self.pool[i];
            if r != id {
                self.pool[w] = r;
                w += 1;
            }
        }
        self.nodes[node].span.len = w - span.start;
        self.sep_cache[node] = 0;
        self.bump_generation();
    }

    /// Mark a rule deleted.
    pub(crate) fn deactivate_rule(&mut self, id: RuleId) {
        if self.active[id] {
            self.num_active -= 1;
        }
        self.active[id] = false;
        // Separability is defined over *active* rules: a deletion can
        // flip any node's mask, so drop the whole cache.
        self.sep_cache.iter_mut().for_each(|s| *s = 0);
        self.bump_generation();
    }

    /// Serialise the full tree (rule arena + nodes) to JSON — the
    /// deployment format: a built classifier can be shipped to and
    /// loaded by any process without retraining.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tree serialises")
    }

    /// Load a tree saved by [`Self::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Iterate over the ids of all current leaf nodes.
    pub fn leaf_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf())
    }

    /// Iterate over the ids of all internal (expanded) nodes.
    pub fn internal_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(|&i| !self.nodes[i].is_leaf())
    }

    /// True when the node holds at most `binth` rules (the standard
    /// leaf-termination condition in all the cutting papers).
    pub fn is_terminal(&self, id: NodeId, binth: usize) -> bool {
        self.nodes[id].span.len <= binth
    }

    /// Clip `(lo, hi)` to `s` with the same anchoring as
    /// [`DimRange::intersect`] (empty results collapse to `max(lo)`).
    #[inline]
    fn clip_proj((lo, hi): (u64, u64), s: &DimRange) -> (u64, u64) {
        let l = lo.max(s.lo);
        let h = hi.min(s.hi).max(l);
        (l, h)
    }

    /// Compute the per-dimension separability mask of a node: bit `d`
    /// set when [`Self::dim_separable`] holds for dimension `d`. One
    /// pass over the node's rules covers all five dimensions, with an
    /// early exit once every cuttable dimension is known separable.
    fn compute_separability(&self, id: NodeId) -> u8 {
        let node = &self.nodes[id];
        let mut pending = 0u8;
        for (d, r) in node.space.ranges.iter().enumerate() {
            if r.len() >= 2 {
                pending |= 1 << d;
            }
        }
        if pending == 0 {
            return 0;
        }
        let mut mask = 0u8;
        let mut heads = [(0u64, 0u64); NUM_DIMS];
        let mut have_head = false;
        for &r in self.span_slice(node.span) {
            if !self.active[r] {
                continue;
            }
            if !have_head {
                for (d, h) in heads.iter_mut().enumerate() {
                    *h = Self::clip_proj(self.store.proj(d, r), &node.space.ranges[d]);
                }
                have_head = true;
                continue;
            }
            let mut p = pending;
            while p != 0 {
                let d = p.trailing_zeros() as usize;
                p &= p - 1;
                if Self::clip_proj(self.store.proj(d, r), &node.space.ranges[d]) != heads[d] {
                    mask |= 1 << d;
                    pending &= !(1 << d);
                }
            }
            if pending == 0 {
                break;
            }
        }
        mask
    }

    /// The node's per-dimension separability as a 5-bit mask (bit `d`
    /// set ⇔ [`Self::dim_separable`] for dimension `d`), **memoized**:
    /// computed at most once per node in a single pass over its rules
    /// and invalidated by any mutation of the node's rule list
    /// (truncation, leaf insertion/removal, rule deletion). The episode
    /// hot loop asks once per visited node; the cache makes repeat
    /// queries (progress checks, builders revisiting) free.
    pub fn separability_mask(&mut self, id: NodeId) -> u8 {
        let cached = self.sep_cache[id];
        if cached & SEP_COMPUTED != 0 {
            return cached & !SEP_COMPUTED;
        }
        let mask = self.compute_separability(id);
        self.sep_cache[id] = mask | SEP_COMPUTED;
        mask
    }

    /// True when cutting `dim` could still separate the node's rules:
    /// the node's range in `dim` can be cut (length ≥ 2) and at least
    /// two active rules have different projections onto it (clipped to
    /// the node's space). Cutting a non-separable dimension replicates
    /// every rule into some child for no discrimination gain.
    pub fn dim_separable(&self, id: NodeId, dim: Dim) -> bool {
        if self.sep_cache[id] & SEP_COMPUTED != 0 {
            return self.sep_cache[id] & (1 << dim.index()) != 0;
        }
        self.compute_separability(id) & (1 << dim.index()) != 0
    }

    /// True when some cut could still separate the node's rules (see
    /// [`Self::dim_separable`]). When false, no sequence of cuts can
    /// ever shrink the rule list — every tree builder must treat the
    /// node as terminal or recurse forever.
    pub fn is_separable(&self, id: NodeId) -> bool {
        if self.sep_cache[id] & SEP_COMPUTED != 0 {
            return self.sep_cache[id] & !SEP_COMPUTED != 0;
        }
        self.compute_separability(id) != 0
    }

    /// Rule counts each child of an equal-size cut would receive,
    /// without materialising the children: one pass over the node's
    /// rules, O(rules + overlapped children) instead of the old
    /// per-child rescan. Exactly the counts [`Self::cut_node`] would
    /// assign.
    pub fn cut_child_counts(&self, id: NodeId, dim: Dim, ncuts: usize) -> Vec<usize> {
        let node = &self.nodes[id];
        let range = *node.space.range(dim);
        let step = (range.len() / ncuts as u64).max(1);
        let d = dim.index();
        let space = node.space;
        let mut counts = vec![0usize; ncuts];
        for &r in self.span_slice(node.span) {
            if !self.active[r] || !self.store.intersects(r, &space) {
                continue;
            }
            let (rl, rh) = self.store.proj(d, r);
            let (first, last) = Self::cut_span_of(&range, step, ncuts, rl, rh);
            for c in &mut counts[first..=last] {
                *c += 1;
            }
        }
        counts
    }

    /// Rule counts for a simultaneous multi-dimension cut (HyperCuts),
    /// single-pass like [`Self::cut_child_counts`].
    pub fn multicut_child_counts(&self, id: NodeId, dims: &[(Dim, usize)]) -> Vec<usize> {
        let node = &self.nodes[id];
        let specs: Vec<(usize, DimRange, u64, usize)> = dims
            .iter()
            .map(|&(dim, n)| {
                let range = *node.space.range(dim);
                (dim.index(), range, (range.len() / n as u64).max(1), n)
            })
            .collect();
        let nchildren: usize = dims.iter().map(|&(_, n)| n).product();
        let space = node.space;
        let mut counts = vec![0usize; nchildren];
        for &r in self.span_slice(node.span) {
            if !self.active[r] || !self.store.intersects(r, &space) {
                continue;
            }
            Self::for_each_multi_child(&self.store, &specs, r, |c| counts[c] += 1);
        }
        counts
    }

    /// Rule counts each equi-dense-cut child would receive, single-pass
    /// (EffiCuts' progress probe).
    pub fn dense_child_counts(&self, id: NodeId, dim: Dim, bounds: &[u64]) -> Vec<usize> {
        let node = &self.nodes[id];
        let d = dim.index();
        let nchildren = bounds.len() - 1;
        let space = node.space;
        let mut counts = vec![0usize; nchildren];
        for &r in self.span_slice(node.span) {
            if !self.active[r] || !self.store.intersects(r, &space) {
                continue;
            }
            let (rl, rh) = self.store.proj(d, r);
            let first = bounds[1..].partition_point(|&b| b <= rl).min(nchildren - 1);
            let last = bounds[..nchildren].partition_point(|&b| b < rh).saturating_sub(1);
            for c in &mut counts[first..=last] {
                *c += 1;
            }
        }
        counts
    }

    /// True when cutting would make progress: at least one child would
    /// hold strictly fewer rules than the node. Builders use this to
    /// avoid infinite recursion when every rule spans the whole node.
    pub fn cut_makes_progress(&self, id: NodeId, dim: Dim, ncuts: usize) -> bool {
        let n = self.nodes[id].span.len;
        self.cut_child_counts(id, dim, ncuts).iter().any(|&c| c < n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, DimRange, GeneratorConfig};

    fn small_rules() -> RuleSet {
        let mut r_tcp = Rule::default_rule(2);
        r_tcp.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let mut r_low = Rule::default_rule(1);
        r_low.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        let r_def = Rule::default_rule(0);
        RuleSet::new(vec![r_tcp, r_low, r_def])
    }

    #[test]
    fn fresh_tree_is_single_leaf_with_all_rules() {
        let rs = small_rules();
        let t = DecisionTree::new(&rs);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.rules_at(t.root()), &[0, 1, 2][..]);
        assert_eq!(t.num_active_rules(), 3);
        assert!(t.node(t.root()).is_leaf());
    }

    #[test]
    fn shared_store_trees_do_not_clone_rules() {
        let rs = small_rules();
        let store = Arc::new(RuleStore::from_ruleset(&rs));
        let a = DecisionTree::with_store(Arc::clone(&store));
        let b = DecisionTree::with_store(Arc::clone(&store));
        assert!(Arc::ptr_eq(a.store(), b.store()));
        assert_eq!(a.rules().len(), 3);
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(a.classify(&p), b.classify(&p));
    }

    #[test]
    fn classify_on_unexpanded_root_equals_linear_scan() {
        let rs = small_rules();
        let t = DecisionTree::new(&rs);
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(t.classify(&p), Some(0)); // TCP rule
        assert_eq!(t.classify(&p), t.linear_classify(&p));
        let p = Packet::new(1, 2, 3, 500, 17);
        assert_eq!(t.classify(&p), Some(1)); // low dst port
        let p = Packet::new(1, 2, 3, 5000, 17);
        assert_eq!(t.classify(&p), Some(2)); // default
    }

    #[test]
    fn cut_assigns_rules_by_intersection() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        assert_eq!(kids.len(), 4);
        // Child 0 covers dst ports [0, 16384): all three rules intersect.
        assert_eq!(t.rules_at(kids[0]).len(), 3);
        // Children 1..4 exclude [0, 1024): the low-port rule drops out.
        for &k in &kids[1..] {
            assert_eq!(t.rules_at(k), &[0, 2][..]);
            assert_eq!(t.node(k).depth, 1);
            assert_eq!(t.node(k).parent, Some(t.root()));
        }
        // Lookup still agrees with the linear scan.
        let p = Packet::new(0, 0, 0, 800, 17);
        assert_eq!(t.classify(&p), Some(1));
        let p = Packet::new(0, 0, 0, 40000, 6);
        assert_eq!(t.classify(&p), Some(0));
    }

    #[test]
    fn multicut_row_major_lookup() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.multicut_node(t.root(), &[(Dim::DstPort, 2), (Dim::Proto, 2)]);
        assert_eq!(kids.len(), 4);
        // proto=6 < 128 -> inner index 0; dstport 40000 -> outer index 1.
        let p = Packet::new(0, 0, 0, 40000, 6);
        assert_eq!(t.classify(&p), Some(0));
        let p = Packet::new(0, 0, 0, 100, 200);
        assert_eq!(t.classify(&p), Some(1));
    }

    #[test]
    fn dense_cut_routes_by_boundary() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.dense_cut_node(t.root(), Dim::DstPort, vec![0, 1024, 8192, 65536]);
        assert_eq!(kids.len(), 3);
        assert_eq!(t.rules_at(kids[0]), &[0, 1, 2][..]);
        assert_eq!(t.rules_at(kids[1]), &[0, 2][..]);
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1023, 17)), Some(1));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1024, 17)), Some(2));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 60000, 6)), Some(0));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn dense_cut_rejects_unsorted_bounds() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.dense_cut_node(t.root(), Dim::DstPort, vec![0, 9000, 1024, 65536]);
    }

    #[test]
    fn split_routes_by_threshold() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let (l, r) = t.split_node(t.root(), Dim::DstPort, 1024);
        assert_eq!(t.rules_at(l), &[0, 1, 2][..]);
        assert_eq!(t.rules_at(r), &[0, 2][..]);
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1023, 17)), Some(1));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 1024, 17)), Some(2));
    }

    #[test]
    #[should_panic(expected = "outside open range")]
    fn split_at_boundary_panics() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.split_node(t.root(), Dim::DstPort, 0);
    }

    #[test]
    fn partition_searches_all_children() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.partition_node(t.root(), vec![vec![1], vec![0, 2]]);
        assert_eq!(kids.len(), 2);
        // Match in the second partition child, but rule 1 (other child)
        // has higher precedence for low ports.
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 100, 6)), Some(0));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 100, 17)), Some(1));
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 9999, 17)), Some(2));
    }

    #[test]
    #[should_panic(expected = "exactly cover")]
    fn partition_must_cover_rules() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.partition_node(t.root(), vec![vec![0], vec![1]]); // missing rule 2
    }

    #[test]
    #[should_panic(expected = "already expanded")]
    fn double_expansion_panics() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.cut_node(t.root(), Dim::Proto, 2);
        t.cut_node(t.root(), Dim::Proto, 2);
    }

    #[test]
    fn truncate_covered_drops_unreachable_rules() {
        // Highest-precedence rule covers protocols [0, 128); after
        // cutting proto in two, it fully covers the left child's space,
        // making the two lower-precedence rules unreachable there.
        let mut r_cover = Rule::default_rule(2);
        r_cover.ranges[Dim::Proto.index()] = DimRange::new(0, 128);
        let mut r_low = Rule::default_rule(1);
        r_low.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        let rs = RuleSet::new(vec![r_cover, r_low, Rule::default_rule(0)]);
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::Proto, 2);
        assert_eq!(t.rules_at(kids[0]), &[0, 1, 2][..]);
        let removed = t.truncate_covered(kids[0]);
        assert_eq!(removed, 2);
        assert_eq!(t.rules_at(kids[0]), &[0][..]);
        // Classification through the truncated node is still correct.
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 9999, 6)), Some(0));
        // The untouched right child still resolves to the default rule.
        assert_eq!(t.classify(&Packet::new(0, 0, 0, 9999, 200)), Some(2));
    }

    #[test]
    fn cut_makes_progress_detection() {
        let rs = small_rules();
        let t = DecisionTree::new(&rs);
        // All three rules are full-width in SrcIp: cutting there cannot
        // separate them.
        assert!(!t.cut_makes_progress(t.root(), Dim::SrcIp, 8));
        // Cutting DstPort separates the low-port rule.
        assert!(t.cut_makes_progress(t.root(), Dim::DstPort, 8));
    }

    #[test]
    fn separability_mask_matches_per_dim_queries_and_memoizes() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 80).with_seed(9));
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::SrcIp, 8);
        for id in std::iter::once(t.root()).chain(kids) {
            let mask = t.separability_mask(id);
            for (d, &dim) in classbench::DIMS.iter().enumerate() {
                assert_eq!(mask & (1 << d) != 0, t.dim_separable(id, dim), "node {id} dim {dim}");
            }
            assert_eq!(mask != 0, t.is_separable(id));
            // Memoized: a second query returns the same mask.
            assert_eq!(t.separability_mask(id), mask);
        }
        // Truncation invalidates the cache.
        let victim = *t.nodes[t.root()].kind.children().first().unwrap();
        let before = t.separability_mask(victim);
        t.truncate_covered(victim);
        let after = t.separability_mask(victim);
        // The fresh mask is recomputed from the (possibly shorter) list
        // and still matches the immutable per-dim queries.
        for (d, &dim) in classbench::DIMS.iter().enumerate() {
            assert_eq!(after & (1 << d) != 0, t.dim_separable(victim, dim));
        }
        let _ = before;
    }

    #[test]
    fn child_counts_match_materialised_children() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 120).with_seed(31));
        for ncuts in [2, 7, 32] {
            let mut t = DecisionTree::new(&rs);
            let sim = t.cut_child_counts(t.root(), Dim::SrcIp, ncuts);
            let kids = t.cut_node(t.root(), Dim::SrcIp, ncuts);
            let real: Vec<usize> = kids.iter().map(|&k| t.rules_at(k).len()).collect();
            assert_eq!(sim, real, "ncuts {ncuts}");
        }
        let mut t = DecisionTree::new(&rs);
        let dims = [(Dim::SrcIp, 4), (Dim::DstIp, 2), (Dim::Proto, 2)];
        let sim = t.multicut_child_counts(t.root(), &dims);
        let kids = t.multicut_node(t.root(), &dims);
        let real: Vec<usize> = kids.iter().map(|&k| t.rules_at(k).len()).collect();
        assert_eq!(sim, real);
        let mut t = DecisionTree::new(&rs);
        let bounds = vec![0, 1 << 8, 1 << 20, 1 << 30, 1 << 32];
        let sim = t.dense_child_counts(t.root(), Dim::DstIp, &bounds);
        let kids = t.dense_cut_node(t.root(), Dim::DstIp, bounds);
        let real: Vec<usize> = kids.iter().map(|&k| t.rules_at(k).len()).collect();
        assert_eq!(sim, real);
    }

    #[test]
    fn degenerate_tiny_range_cut_matches_reference_filter() {
        // A 2-wide proto range cut into 8 produces six empty trailing
        // children anchored at the range top; the half-open overlap
        // predicate still assigns wide rules to them. The single-pass
        // assignment must reproduce that exactly.
        let mut narrow = Rule::default_rule(1);
        narrow.ranges[Dim::Proto.index()] = DimRange::new(5, 7);
        let rs = RuleSet::new(vec![narrow, Rule::default_rule(0)]);
        let mut t = DecisionTree::new(&rs);
        // Shrink the root range to [5, 7) via a split, then cut into 8.
        let (_, r) = t.split_node(t.root(), Dim::Proto, 5);
        let (mid, _) = t.split_node(r, Dim::Proto, 7);
        let kids = t.cut_node(mid, Dim::Proto, 8);
        assert_eq!(kids.len(), 8);
        for &k in &kids {
            let space = t.node(k).space;
            let reference: Vec<RuleId> = t
                .rules_at(mid)
                .iter()
                .copied()
                .filter(|&r| t.is_active(r) && space.intersects_rule(t.rule(r)))
                .collect();
            assert_eq!(t.rules_at(k), &reference[..], "child {k} space {space}");
        }
    }

    #[test]
    fn generated_rules_classify_consistently() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(3));
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::SrcIp, 16);
        for k in kids {
            if !t.is_terminal(k, 8) {
                t.cut_node(k, Dim::DstIp, 4);
            }
        }
        let trace = classbench::generate_trace(&rs, &classbench::TraceConfig::new(300));
        for p in &trace {
            assert_eq!(t.classify(p), rs.classify(p), "packet {p}");
        }
    }

    #[test]
    fn classify_traced_counts_path_nodes() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        t.cut_node(kids[0], Dim::Proto, 2);
        // Path through the expanded child: root + cut child + leaf = 3.
        let (r, visited) = t.classify_traced(&Packet::new(0, 0, 0, 100, 6));
        assert_eq!(r, Some(0));
        assert_eq!(visited, 3);
        // Path through an unexpanded child: root + leaf = 2.
        let (_, visited) = t.classify_traced(&Packet::new(0, 0, 0, 50000, 6));
        assert_eq!(visited, 2);
        // classify_traced agrees with classify.
        let p = Packet::new(0, 0, 0, 500, 17);
        assert_eq!(t.classify_traced(&p).0, t.classify(&p));
    }

    #[test]
    fn classify_traced_counts_all_partitions() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.partition_node(t.root(), vec![vec![0], vec![1, 2]]);
        // Root + both partition children are always consulted.
        let (_, visited) = t.classify_traced(&Packet::new(0, 0, 0, 0, 6));
        assert_eq!(visited, 3);
    }

    #[test]
    fn visit_counts_route_like_lookup() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::DstPort, 2);
        let trace = vec![
            Packet::new(0, 0, 0, 100, 6),   // low half
            Packet::new(0, 0, 0, 200, 17),  // low half
            Packet::new(0, 0, 0, 60000, 6), // high half
        ];
        let counts = t.node_visit_counts(&trace);
        assert_eq!(counts[t.root()], 3);
        assert_eq!(counts[kids[0]], 2);
        assert_eq!(counts[kids[1]], 1);
        // Totals match per-packet traced costs.
        let total: usize = counts.iter().sum();
        let traced: usize = trace.iter().map(|p| t.classify_traced(p).1).sum();
        assert_eq!(total, traced);
    }

    #[test]
    fn leaf_and_internal_iterators() {
        let rs = small_rules();
        let mut t = DecisionTree::new(&rs);
        t.cut_node(t.root(), Dim::Proto, 2);
        assert_eq!(t.leaf_ids().count(), 2);
        assert_eq!(t.internal_ids().count(), 1);
        assert_eq!(t.num_nodes(), 3);
    }
}
