//! Tree-correctness validation: lookup must agree with the
//! priority-ordered linear scan on every packet.
//!
//! The paper's premise (§3.2) is that decision trees provide *perfect
//! accuracy by construction* — unlike a neural classifier. This module
//! enforces that premise in tests and after every experiment: we probe
//! the tree with packets sampled inside every rule, at rule corners
//! (where off-by-one errors live), and uniformly at random.

use crate::tree::DecisionTree;
use classbench::{trace::sample_packet_in_rule, Packet, NUM_DIMS};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A disagreement between tree lookup and the linear scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The probing packet.
    pub packet: Packet,
    /// What the tree returned.
    pub tree_result: Option<usize>,
    /// What the ground-truth linear scan returned.
    pub linear_result: Option<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "packet {}: tree={:?} linear={:?}",
            self.packet, self.tree_result, self.linear_result
        )
    }
}

/// Probe `tree` with directed and random packets; return the first
/// `max_violations` disagreements (empty = validated).
///
/// Probes, deterministic in `seed`:
/// * the low corner of every active rule and a jittered point inside it,
/// * boundary-adjacent points one unit left/right of each rule bound,
/// * `random_probes` uniform packets.
pub fn validate_tree(tree: &DecisionTree, random_probes: usize, seed: u64) -> Vec<Violation> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x76_616c); // "val"
    let mut violations = Vec::new();
    let max_violations = 16;

    let check = |packet: Packet, violations: &mut Vec<Violation>| {
        if violations.len() >= max_violations {
            return;
        }
        let tree_result = tree.classify(&packet);
        let linear_result = tree.linear_classify(&packet);
        if tree_result != linear_result {
            violations.push(Violation { packet, tree_result, linear_result });
        }
    };

    let spans: [u64; NUM_DIMS] = std::array::from_fn(|i| classbench::Dim::from_index(i).span());

    for (id, rule) in tree.rules().iter().enumerate() {
        if !tree.is_active(id) {
            continue;
        }
        check(rule.low_corner(), &mut violations);
        check(sample_packet_in_rule(&mut rng, rule), &mut violations);
        // Boundary probes: one unit inside/outside each range bound.
        // (Indexing three parallel arrays by dimension; an iterator
        // chain would obscure that.)
        #[allow(clippy::needless_range_loop)]
        for d in 0..NUM_DIMS {
            let r = &rule.ranges[d];
            let mut base = rule.low_corner();
            if r.lo > 0 {
                base.values[d] = r.lo - 1;
                check(base, &mut violations);
            }
            if r.hi < spans[d] {
                base.values[d] = r.hi; // first value *outside* the rule
                check(base, &mut violations);
            }
            base.values[d] = r.hi - 1; // last value inside
            check(base, &mut violations);
        }
    }

    for _ in 0..random_probes {
        let p = Packet::new(
            rng.gen_range(0..spans[0]),
            rng.gen_range(0..spans[1]),
            rng.gen_range(0..spans[2]),
            rng.gen_range(0..spans[3]),
            rng.gen_range(0..spans[4]),
        );
        check(p, &mut violations);
    }

    violations
}

/// Panic with a readable report if the tree fails validation.
// nc-lint: allow(error-taxonomy, reason = "panicking with a readable report is this validation helper's documented contract; callers wanting errors use validate_tree")
pub fn assert_tree_valid(tree: &DecisionTree, random_probes: usize, seed: u64) {
    let violations = validate_tree(tree, random_probes, seed);
    assert!(
        violations.is_empty(),
        "tree lookup disagrees with linear scan:\n{}",
        violations.iter().map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, Dim, GeneratorConfig};

    #[test]
    fn fresh_tree_validates() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 100));
        let t = DecisionTree::new(&rs);
        assert!(validate_tree(&t, 200, 0).is_empty());
    }

    #[test]
    fn cut_trees_validate() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 150).with_seed(2));
            let mut t = DecisionTree::new(&rs);
            let kids = t.cut_node(t.root(), Dim::SrcIp, 8);
            for k in kids {
                if !t.is_terminal(k, 4) {
                    let grand = t.cut_node(k, Dim::DstPort, 4);
                    for g in grand {
                        t.truncate_covered(g);
                    }
                }
            }
            assert_tree_valid(&t, 300, 7);
        }
    }

    #[test]
    fn partitioned_trees_validate() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 120).with_seed(5));
        let mut t = DecisionTree::new(&rs);
        let all: Vec<usize> = t.rules_at(t.root()).to_vec();
        let (big, small): (Vec<_>, Vec<_>) =
            all.iter().partition(|&&r| t.rule(r).largeness(Dim::SrcIp) > 0.5);
        if !big.is_empty() && !small.is_empty() {
            let kids = t.partition_node(t.root(), vec![big, small]);
            for k in kids {
                if !t.is_terminal(k, 8) {
                    t.cut_node(k, Dim::DstIp, 4);
                }
            }
        }
        assert_tree_valid(&t, 300, 3);
    }

    #[test]
    fn validator_catches_corruption() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 50).with_seed(1));
        let mut t = DecisionTree::new(&rs);
        let kids = t.cut_node(t.root(), Dim::SrcIp, 4);
        // Corrupt: steal all rules from one child that had rules.
        let victim = kids.iter().copied().max_by_key(|&k| t.node(k).num_rules()).unwrap();
        // Test-only surgery: empty the victim leaf's rule list in the
        // serialised form and reload.
        let mut json = serde_json::to_value(&t).unwrap();
        json["nodes"][victim]["rules"] = serde_json::json!([]);
        let corrupted: DecisionTree = serde_json::from_value(json).unwrap();
        assert!(!validate_tree(&corrupted, 500, 0).is_empty());
    }
}
