//! Churn-replay harness: the shared machinery for exercising a
//! [`ClassifierHandle`] under load.
//!
//! Both live-update entry points — the CLI `update-bench` subcommand
//! and the `bench_updates` JSON emitter — need the same three pieces:
//! a seeded insert/delete schedule, a pool of reader threads serving a
//! trace from epoch-swapped snapshots while updates land, and a
//! differential check that the served snapshot equals a from-scratch
//! recompile. Keeping them here (next to the handle they drive) keeps
//! the two entry points in lockstep instead of carrying diverging
//! copies.

use crate::faults::{FaultInjector, FaultPoint};
use crate::node::RuleId;
use crate::serve::ClassifierHandle;
use classbench::{Packet, Rule};
use rand::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic, seeded stream of interleaved inserts and deletes.
///
/// Inserts clone a random donor rule with a random priority; deletes
/// pick a random currently-live rule (so they never fail). Roughly 3
/// in 5 steps insert, and the schedule refuses to delete below a
/// small floor of live rules so the classifier never empties.
///
/// With [`Self::with_faults`], each step also consults the injector's
/// [`FaultPoint::UpdateBurst`] point: a firing occurrence turns that
/// step into a burst of extra inserts — the update-storm fault class
/// that exercises overlay backpressure.
#[derive(Debug)]
pub struct ChurnSchedule {
    rng: ChaCha8Rng,
    donors: Vec<Rule>,
    live: Vec<RuleId>,
    min_live: usize,
    faults: Option<Arc<FaultInjector>>,
    burst: usize,
    rejected: u64,
}

impl ChurnSchedule {
    /// A schedule drawing inserts from `donors`, deleting among
    /// `live` (the handle's currently active rule ids) plus whatever
    /// the schedule itself inserts.
    ///
    /// # Panics
    /// Panics if `donors` is empty.
    pub fn new(donors: Vec<Rule>, live: Vec<RuleId>, seed: u64) -> Self {
        assert!(!donors.is_empty(), "churn schedule needs donor rules");
        ChurnSchedule {
            rng: ChaCha8Rng::seed_from_u64(seed),
            donors,
            live,
            min_live: 16,
            faults: None,
            burst: 8,
            rejected: 0,
        }
    }

    /// Arm the schedule with a fault injector: every step evaluates
    /// [`FaultPoint::UpdateBurst`] and a firing occurrence piles a
    /// burst of extra inserts onto that step.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Updates the handle refused (duplicate inserts the schedule
    /// happened to draw, deletes racing a fold). Rejections are part
    /// of normal admission control, not schedule bugs — counted here
    /// so harnesses can report them.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Insert one donor clone with a random priority; `None` when the
    /// handle refuses it (e.g. the draw duplicated a live rule).
    fn insert_one(&mut self, handle: &ClassifierHandle) -> Option<RuleId> {
        let mut rule = self.donors[self.rng.gen_range(0..self.donors.len())].clone();
        rule.priority = self.rng.gen_range(-100..100_000);
        match handle.insert(rule) {
            Ok(id) => {
                self.live.push(id);
                Some(id)
            }
            Err(_) => {
                self.rejected += 1;
                None
            }
        }
    }

    /// Apply one update to the handle. Returns the id inserted, or
    /// `None` when the step was a delete (or a rejected insert).
    pub fn step(&mut self, handle: &ClassifierHandle) -> Option<RuleId> {
        if let Some(faults) = &self.faults {
            if faults.should_fire(FaultPoint::UpdateBurst) {
                for _ in 0..self.burst {
                    self.insert_one(handle);
                }
            }
        }
        if self.live.len() < self.min_live || self.rng.gen_range(0..5) < 3 {
            self.insert_one(handle)
        } else {
            let idx = self.rng.gen_range(0..self.live.len());
            let id = self.live.swap_remove(idx);
            if handle.delete(id).is_err() {
                self.rejected += 1;
            }
            None
        }
    }
}

/// Run `body` (typically an update loop) while `readers` threads
/// continuously serve `trace` from the handle's snapshots, re-fetching
/// whenever the epoch counter says a newer snapshot exists (one atomic
/// load per batch). Returns `body`'s result and the total number of
/// packets the readers classified while it ran.
pub fn serve_during<R>(
    handle: &ClassifierHandle,
    trace: &[Packet],
    readers: usize,
    body: impl FnOnce() -> R,
) -> (R, u64) {
    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let result = std::thread::scope(|scope| {
        for _ in 0..readers.max(1) {
            let (stop, served) = (&stop, &served);
            scope.spawn(move || {
                let mut out = vec![None; trace.len()];
                let mut snap = handle.snapshot();
                while !stop.load(Ordering::Relaxed) {
                    if snap.epoch() != handle.epoch() {
                        snap = handle.snapshot();
                    }
                    snap.classify_batch(trace, &mut out);
                    served.fetch_add(trace.len() as u64, Ordering::Relaxed);
                }
            });
        }
        let result = body();
        stop.store(true, Ordering::Relaxed);
        result
    });
    (result, served.load(Ordering::Relaxed))
}

/// The differential gate: classify `trace` through the handle's
/// current snapshot and through a from-scratch `FlatTree::compile` of
/// its tree; return the first packet where they disagree (`None` means
/// bit-identical — the live-update correctness claim).
///
/// Delegates to [`ClassifierHandle::check_divergence`], which takes
/// snapshot and recompile under **one** lock acquisition (two separate
/// fetches could interleave with a concurrent update and report a false
/// divergence) and adds a probe packet inside every pending overlay
/// rule, so a snapshot taken mid-overlay is certified on the inserts it
/// actually serves — this is the per-swap spot check of the lifecycle
/// loop.
pub fn find_rebuild_divergence(handle: &ClassifierHandle, trace: &[Packet]) -> Option<Packet> {
    handle.check_divergence(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::RebuildPolicy;
    use crate::tree::DecisionTree;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
    };

    fn handle() -> (ClassifierHandle, classbench::RuleSet) {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(55));
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstIp, 4);
            }
        }
        (ClassifierHandle::new(tree, RebuildPolicy::default_policy()), rules)
    }

    #[test]
    fn schedule_is_deterministic_and_keeps_rules_live() {
        let (h1, rules) = handle();
        let (h2, _) = handle();
        let mut s1 = ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 9);
        let mut s2 = ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 9);
        for _ in 0..100 {
            assert_eq!(s1.step(&h1).is_some(), s2.step(&h2).is_some(), "same seed, same schedule");
        }
        assert_eq!(h1.epoch(), h2.epoch());
        assert_eq!(h1.stats().active_rules, h2.stats().active_rules);
        assert!(h1.stats().active_rules >= 16, "live floor must hold");
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(56));
        assert_eq!(find_rebuild_divergence(&h1, &trace), None);
    }

    #[test]
    fn serve_during_counts_reader_work_and_returns_body_result() {
        let (h, rules) = handle();
        let trace = generate_trace(&rules, &TraceConfig::new(100).with_seed(57));
        let mut schedule =
            ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 8);
        let (value, served) = serve_during(&h, &trace, 2, || {
            for _ in 0..20 {
                schedule.step(&h);
            }
            42usize
        });
        assert_eq!(value, 42);
        // Reader threads keep running until the body finishes, so on
        // any scheduler they have at least been spawned; the served
        // count is a multiple of the trace length.
        assert!(served.is_multiple_of(trace.len() as u64));
        assert_eq!(find_rebuild_divergence(&h, &trace), None);
    }
}
