//! Tree nodes and the expansion operations they record.

use crate::space::NodeSpace;
use classbench::Dim;
use serde::{Deserialize, Serialize};

/// Index of a node in its tree's arena.
pub type NodeId = usize;

/// Stable identifier of a rule in the tree's rule arena.
///
/// Rule ids never shift: incremental updates append to the arena and
/// mark deletions, so leaf rule lists stay valid across updates.
pub type RuleId = usize;

/// A node's rule list as a `(start, len)` window into the tree's shared
/// rule-id pool ([`crate::DecisionTree`] owns one growable `Vec<RuleId>`
/// for the whole tree). Spans replace per-node `Vec` allocations: an
/// expansion appends all children's lists to the pool in one go, and
/// truncation just shrinks `len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleSpan {
    /// First pool index of the node's rules.
    pub start: usize,
    /// Number of rules stored at the node.
    pub len: usize,
}

/// What has been decided at a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Undecided or terminal: packets reaching here are matched by a
    /// priority-ordered scan of the node's rules.
    Leaf,
    /// Equal-size cut along one dimension into `ncuts` sub-ranges
    /// (HiCuts and the NeuroCuts cut action).
    Cut {
        /// Dimension that was cut.
        dim: Dim,
        /// Number of equal sub-ranges (2, 4, 8, 16, or 32 in the paper).
        ncuts: usize,
        /// Child nodes, in sub-range order.
        children: Vec<NodeId>,
    },
    /// Simultaneous equal-size cuts along several dimensions
    /// (HyperCuts). Children are stored row-major in `dims` order.
    MultiCut {
        /// `(dimension, ncuts)` per cut dimension.
        dims: Vec<(Dim, usize)>,
        /// `prod(ncuts)` children, row-major.
        children: Vec<NodeId>,
    },
    /// Unequal ("equi-dense") cut along one dimension at explicit
    /// boundaries, so children hold roughly equal numbers of rules
    /// (EffiCuts' equal-dense cuts). `bounds` has `children.len() + 1`
    /// entries; child `i` covers `[bounds[i], bounds[i+1])`.
    DenseCut {
        /// Dimension that was cut.
        dim: Dim,
        /// Monotonically increasing boundaries tiling the node's range.
        bounds: Vec<u64>,
        /// `bounds.len() - 1` children, in boundary order.
        children: Vec<NodeId>,
    },
    /// Binary split at a threshold (HyperSplit / CutSplit).
    Split {
        /// Dimension that was split.
        dim: Dim,
        /// Packets with `value < threshold` go left, others right.
        threshold: u64,
        /// `[left, right]` children.
        children: [NodeId; 2],
    },
    /// Rule partition: children share this node's space but own disjoint
    /// subsets of its rules; a lookup must consult **all** children
    /// (EffiCuts separable trees, NeuroCuts partition actions).
    Partition {
        /// One child per rule subset.
        children: Vec<NodeId>,
    },
}

impl NodeKind {
    /// Child node ids, in order; empty for leaves.
    pub fn children(&self) -> &[NodeId] {
        match self {
            NodeKind::Leaf => &[],
            NodeKind::Cut { children, .. } => children,
            NodeKind::MultiCut { children, .. } => children,
            NodeKind::DenseCut { children, .. } => children,
            NodeKind::Split { children, .. } => children,
            NodeKind::Partition { children } => children,
        }
    }

    /// True for undecided/terminal nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, NodeKind::Leaf)
    }

    /// True for partition nodes (lookups fan out to all children).
    pub fn is_partition(&self) -> bool {
        matches!(self, NodeKind::Partition { .. })
    }
}

/// One node of a [`crate::DecisionTree`].
///
/// The node's rule list lives in the tree's shared pool; read it with
/// [`crate::DecisionTree::rules_at`].
#[derive(Debug, Clone)]
pub struct Node {
    /// Region of header space this node is responsible for.
    pub space: NodeSpace,
    /// Window into the tree's rule-id pool holding this node's rules,
    /// in precedence order (higher priority first, ties broken by lower
    /// [`RuleId`]).
    pub span: RuleSpan,
    /// The expansion applied at this node, or [`NodeKind::Leaf`].
    pub kind: NodeKind,
    /// Distance from the root (root = 0).
    pub depth: usize,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
}

impl Node {
    /// A fresh leaf over an already-pooled rule span.
    pub(crate) fn leaf(
        space: NodeSpace,
        span: RuleSpan,
        depth: usize,
        parent: Option<NodeId>,
    ) -> Self {
        Node { space, span, kind: NodeKind::Leaf, depth, parent }
    }

    /// Number of rules stored at the node.
    pub fn num_rules(&self) -> usize {
        self.span.len
    }

    /// True when the node is an (expandable or terminal) leaf.
    pub fn is_leaf(&self) -> bool {
        self.kind.is_leaf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_has_no_children() {
        let n = Node::leaf(NodeSpace::full(), RuleSpan { start: 0, len: 3 }, 0, None);
        assert!(n.is_leaf());
        assert!(n.kind.children().is_empty());
        assert_eq!(n.num_rules(), 3);
        assert!(!n.kind.is_partition());
    }

    #[test]
    fn kind_children_accessor() {
        let cut = NodeKind::Cut { dim: Dim::SrcIp, ncuts: 4, children: vec![1, 2, 3, 4] };
        assert_eq!(cut.children(), &[1, 2, 3, 4]);
        assert!(!cut.is_leaf());
        let split = NodeKind::Split { dim: Dim::Proto, threshold: 6, children: [5, 6] };
        assert_eq!(split.children(), &[5, 6]);
        let part = NodeKind::Partition { children: vec![7, 8] };
        assert!(part.is_partition());
        assert_eq!(part.children(), &[7, 8]);
    }
}
