//! A compiled, read-only form of a [`DecisionTree`] for serving traffic.
//!
//! The arena tree is ideal for *construction* (algorithms expand leaves
//! in place) but pays for that flexibility at lookup time: nodes hold
//! `Vec`s, child spaces are recomputed from ranges, and matching walks
//! enum variants with embedded allocations. [`FlatTree`] is the
//! deployment artifact: all node parameters are precomputed into flat,
//! contiguous pools (children, leaf rule references, cut strides), so a
//! lookup is pure index arithmetic over dense arrays. Compilation also
//! drops deleted rules and rebinds rule references.
//!
//! `FlatTree::classify` returns the **same rule ids** as the source
//! tree, so results remain comparable with the [`classbench::RuleSet`]
//! ground truth.

use crate::node::{NodeKind, RuleId};
use crate::tree::DecisionTree;
use classbench::{Packet, Rule};
use serde::{Deserialize, Serialize};

/// One compiled node. Parameters index into the [`FlatTree`] pools.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum FlatNode {
    /// `leaf_rules[start..end]` scanned in precedence order.
    Leaf { start: u32, end: u32 },
    /// Equal-size cut: child index is `min((v - lo) / step, ncuts-1)`;
    /// children are `children[base..base+ncuts]`.
    Cut { dim: u8, lo: u64, step: u64, ncuts: u32, base: u32 },
    /// Simultaneous cuts: dims are `cut_dims[dstart..dend]`, children
    /// row-major at `base`.
    MultiCut { dstart: u32, dend: u32, base: u32 },
    /// Unequal cut: boundaries are `bounds[bstart..bend]`; child `i`
    /// covers `[bounds[i], bounds[i+1])`; children at `base`.
    DenseCut { dim: u8, bstart: u32, bend: u32, base: u32 },
    /// Binary threshold split.
    Split { dim: u8, threshold: u64, left: u32, right: u32 },
    /// All of `children[start..end]` are searched; best precedence wins.
    Partition { start: u32, end: u32 },
}

/// Per-dimension parameters of one multicut axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct FlatCutDim {
    dim: u8,
    lo: u64,
    step: u64,
    ncuts: u32,
}

/// A compiled decision tree (see module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatTree {
    nodes: Vec<FlatNode>,
    children: Vec<u32>,
    leaf_rules: Vec<u32>,
    bounds: Vec<u64>,
    cut_dims: Vec<FlatCutDim>,
    /// `(rule, original id)` pairs; `leaf_rules` indexes this table.
    rules: Vec<(Rule, RuleId)>,
    /// Precedence rank per table entry (lower rank wins).
    ranks: Vec<u32>,
    root: u32,
}

impl FlatTree {
    /// Compile a built tree. Deleted rules are dropped; node ids are
    /// renumbered; lookup behaviour is preserved exactly.
    pub fn compile(tree: &DecisionTree) -> FlatTree {
        // Active rules in precedence order; remember original ids.
        let mut order: Vec<RuleId> =
            (0..tree.rules().len()).filter(|&r| tree.is_active(r)).collect();
        order.sort_by(|&a, &b| tree.rule(b).priority.cmp(&tree.rule(a).priority).then(a.cmp(&b)));
        let mut table_index = vec![u32::MAX; tree.rules().len()];
        let rules: Vec<(Rule, RuleId)> = order
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                table_index[r] = i as u32;
                (tree.rule(r).clone(), r)
            })
            .collect();
        let ranks: Vec<u32> = (0..rules.len() as u32).collect();

        let mut flat = FlatTree {
            nodes: Vec::with_capacity(tree.num_nodes()),
            children: Vec::new(),
            leaf_rules: Vec::new(),
            bounds: Vec::new(),
            cut_dims: Vec::new(),
            rules,
            ranks,
            root: 0,
        };

        // Node ids are preserved 1:1 (the arena already contains every
        // node), so children can be emitted directly.
        for node in tree.nodes() {
            let compiled = match &node.kind {
                NodeKind::Leaf => {
                    let start = flat.leaf_rules.len() as u32;
                    flat.leaf_rules.extend(
                        node.rules.iter().filter(|&&r| tree.is_active(r)).map(|&r| table_index[r]),
                    );
                    FlatNode::Leaf { start, end: flat.leaf_rules.len() as u32 }
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let range = node.space.range(*dim);
                    let base = flat.push_children(children);
                    FlatNode::Cut {
                        dim: dim.index() as u8,
                        lo: range.lo,
                        step: (range.len() / *ncuts as u64).max(1),
                        ncuts: *ncuts as u32,
                        base,
                    }
                }
                NodeKind::MultiCut { dims, children } => {
                    let dstart = flat.cut_dims.len() as u32;
                    for &(dim, ncuts) in dims {
                        let range = node.space.range(dim);
                        flat.cut_dims.push(FlatCutDim {
                            dim: dim.index() as u8,
                            lo: range.lo,
                            step: (range.len() / ncuts as u64).max(1),
                            ncuts: ncuts as u32,
                        });
                    }
                    let base = flat.push_children(children);
                    FlatNode::MultiCut { dstart, dend: flat.cut_dims.len() as u32, base }
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let bstart = flat.bounds.len() as u32;
                    flat.bounds.extend_from_slice(bounds);
                    let base = flat.push_children(children);
                    FlatNode::DenseCut {
                        dim: dim.index() as u8,
                        bstart,
                        bend: flat.bounds.len() as u32,
                        base,
                    }
                }
                NodeKind::Split { dim, threshold, children } => FlatNode::Split {
                    dim: dim.index() as u8,
                    threshold: *threshold,
                    left: children[0] as u32,
                    right: children[1] as u32,
                },
                NodeKind::Partition { children } => {
                    let start = flat.push_children(children);
                    FlatNode::Partition { start, end: start + children.len() as u32 }
                }
            };
            flat.nodes.push(compiled);
        }
        flat.root = tree.root() as u32;
        flat
    }

    fn push_children(&mut self, children: &[usize]) -> u32 {
        let base = self.children.len() as u32;
        self.children.extend(children.iter().map(|&c| c as u32));
        base
    }

    /// Number of compiled nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of active rules in the compiled table.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Approximate resident size in bytes of the compiled structure.
    pub fn resident_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<FlatNode>()
            + self.children.len() * 4
            + self.leaf_rules.len() * 4
            + self.bounds.len() * 8
            + self.cut_dims.len() * std::mem::size_of::<FlatCutDim>()
            + self.rules.len() * (std::mem::size_of::<Rule>() + 8)
            + self.ranks.len() * 4
    }

    /// Classify a packet: the **original** rule id of the highest-
    /// precedence match, identical to the source tree's `classify`.
    pub fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.classify_from(self.root, packet).map(|ti| self.rules[ti as usize].1)
    }

    /// Returns the winning *table* index (rank order), or `None`.
    fn classify_from(&self, mut id: u32, packet: &Packet) -> Option<u32> {
        loop {
            match self.nodes[id as usize] {
                FlatNode::Leaf { start, end } => {
                    return self.leaf_rules[start as usize..end as usize]
                        .iter()
                        .copied()
                        .find(|&ti| self.rules[ti as usize].0.matches(packet));
                }
                FlatNode::Cut { dim, lo, step, ncuts, base } => {
                    let v = packet.values[dim as usize];
                    let idx = ((v.saturating_sub(lo)) / step).min(u64::from(ncuts) - 1) as u32;
                    id = self.children[(base + idx) as usize];
                }
                FlatNode::MultiCut { dstart, dend, base } => {
                    let mut idx = 0u32;
                    for cd in &self.cut_dims[dstart as usize..dend as usize] {
                        let v = packet.values[cd.dim as usize];
                        let i = ((v.saturating_sub(cd.lo)) / cd.step).min(u64::from(cd.ncuts) - 1)
                            as u32;
                        idx = idx * cd.ncuts + i;
                    }
                    id = self.children[(base + idx) as usize];
                }
                FlatNode::DenseCut { dim, bstart, bend, base } => {
                    let v = packet.values[dim as usize];
                    let bounds = &self.bounds[bstart as usize..bend as usize];
                    let idx =
                        bounds.partition_point(|&b| b <= v).saturating_sub(1).min(bounds.len() - 2)
                            as u32;
                    id = self.children[(base + idx) as usize];
                }
                FlatNode::Split { dim, threshold, left, right } => {
                    id = if packet.values[dim as usize] < threshold { left } else { right };
                }
                FlatNode::Partition { start, end } => {
                    let mut best: Option<u32> = None;
                    for &c in &self.children[start as usize..end as usize] {
                        if let Some(ti) = self.classify_from(c, packet) {
                            // Table order *is* precedence order.
                            if best.is_none_or(|b| ti < b) {
                                best = Some(ti);
                            }
                        }
                    }
                    return best;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
    };

    fn agreement_check(tree: &DecisionTree, rules: &classbench::RuleSet, probes: usize) {
        let flat = FlatTree::compile(tree);
        assert_eq!(flat.num_nodes(), tree.num_nodes());
        let trace = generate_trace(rules, &TraceConfig::new(probes).with_seed(91));
        for p in &trace {
            assert_eq!(flat.classify(p), tree.classify(p), "at {p}");
        }
    }

    #[test]
    fn compiled_cut_tree_agrees() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(90));
        let mut tree = DecisionTree::new(&rules);
        let kids = tree.cut_node(tree.root(), Dim::SrcIp, 8);
        for k in kids {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstPort, 4);
            }
        }
        agreement_check(&tree, &rules, 500);
    }

    #[test]
    fn compiled_mixed_kinds_agree() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 150).with_seed(92));
        let mut tree = DecisionTree::new(&rules);
        let all = tree.node(tree.root()).rules.clone();
        let (a, b) = all.split_at(all.len() / 2);
        let parts = tree.partition_node(tree.root(), vec![a.to_vec(), b.to_vec()]);
        tree.multicut_node(parts[0], &[(Dim::SrcIp, 4), (Dim::Proto, 2)]);
        tree.split_node(parts[1], Dim::DstPort, 1024);
        let leaves: Vec<usize> = tree.leaf_ids().collect();
        for id in leaves {
            let range = *tree.node(id).space.range(Dim::SrcPort);
            if range.len() > 4096 && tree.node(id).rules.len() > 4 {
                let mid1 = range.lo + range.len() / 3;
                let mid2 = range.lo + 2 * range.len() / 3;
                tree.dense_cut_node(id, Dim::SrcPort, vec![range.lo, mid1, mid2, range.hi]);
                break;
            }
        }
        agreement_check(&tree, &rules, 600);
    }

    #[test]
    fn compiled_tree_drops_deleted_rules() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(93));
        let mut tree = DecisionTree::new(&rules);
        tree.cut_node(tree.root(), Dim::DstIp, 8);
        let top = tree.rules().iter().map(|r| r.priority).max().unwrap();
        let id = crate::updates::insert_rule(&mut tree, Rule::default_rule(top + 1));
        crate::updates::delete_rule(&mut tree, id);
        let flat = FlatTree::compile(&tree);
        assert_eq!(flat.num_rules(), tree.num_active_rules());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(94));
        for p in &trace {
            assert_eq!(flat.classify(p), tree.classify(p));
        }
    }

    #[test]
    fn compiled_tree_roundtrips_through_serde() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 100).with_seed(95));
        let mut tree = DecisionTree::new(&rules);
        tree.cut_node(tree.root(), Dim::SrcIp, 16);
        let flat = FlatTree::compile(&tree);
        let json = serde_json::to_string(&flat).unwrap();
        let restored: FlatTree = serde_json::from_str(&json).unwrap();
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(96));
        for p in &trace {
            assert_eq!(flat.classify(p), restored.classify(p));
        }
    }

    #[test]
    fn resident_bytes_is_positive_and_scales() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(97));
        let mut small_tree = DecisionTree::new(&rules);
        let small = FlatTree::compile(&small_tree).resident_bytes();
        small_tree.cut_node(small_tree.root(), Dim::SrcIp, 32);
        let bigger = FlatTree::compile(&small_tree).resident_bytes();
        assert!(small > 0);
        assert!(bigger > small);
    }
}
