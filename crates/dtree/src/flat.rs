//! A compiled, read-only form of a [`DecisionTree`] for serving traffic.
//!
//! The arena tree is ideal for *construction* (algorithms expand leaves
//! in place) but pays for that flexibility at lookup time: nodes hold
//! `Vec`s, child spaces are recomputed from ranges, and matching walks
//! enum variants with embedded allocations. [`FlatTree`] is the
//! deployment artifact, rebuilt for throughput:
//!
//! * **Breadth-first node order.** Compiled nodes are renumbered
//!   breadth-first from the root, so the hot upper levels of the tree —
//!   shared by every lookup — pack into a handful of consecutive cache
//!   lines instead of being scattered in arena creation order.
//! * **Structure-of-arrays rule store.** Rule bounds live in
//!   per-dimension `lo`/`hi` arrays in precedence (rank) order, plus a
//!   cache-packed per-leaf scan copy. A leaf scan touches only the
//!   bounds it actually compares, in prefetch order, instead of
//!   dragging whole cloned `Rule` structs through the cache.
//! * **Division-free cut indexing.** Equal-size cuts precompute a
//!   Granlund–Montgomery/Lemire style reciprocal at compile time, so
//!   the per-level child-index computation is a multiply-and-shift
//!   rather than a hardware `u64` divide.
//! * **Batched lookup.** [`FlatTree::classify_batch`] traverses many
//!   packets as an interleaved wavefront: a level-synchronous frontier
//!   advances every in-flight packet one node per round, so
//!   independent node fetches overlap in the memory pipeline instead
//!   of serialising per packet.
//!
//! `FlatTree::classify` returns the **same rule ids** as the source
//! tree, so results remain comparable with the [`classbench::RuleSet`]
//! ground truth. Packets are assumed valid ([`Packet::is_valid`]):
//! each field lies inside its dimension's span, which the reciprocal
//! cut indexing relies on (all dividends and divisors fit in 32 bits).

use crate::node::{NodeKind, RuleId};
use crate::tree::DecisionTree;
use classbench::{Packet, NUM_DIMS};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sentinel table rank for "no rule matched" in the batched core
/// (ranks are dense from 0, so `u32::MAX` can never be a real rank).
const NO_RANK: u32 = u32::MAX;

/// Width of one `leaf_bounds` entry in `u32` words: 8 lower bounds
/// then 8 inclusive upper bounds. The five real dimensions are padded
/// to a power-of-two lane count with always-true lanes (`lo = 0`,
/// `hi = u32::MAX`) so the per-rule match test is two straight-line
/// 8-wide compare loops the compiler can vectorise.
const LEAF_ENTRY: usize = 16;

/// Lanes per bound half of a [`LEAF_ENTRY`] (real dims + padding).
const LEAF_LANES: usize = LEAF_ENTRY / 2;

/// Precompute the reciprocal for division-free `x / step`, exact for
/// all `x < 2^32` and `1 < step < 2^32` (Granlund–Montgomery round-up
/// method with a 64-bit fraction). `step == 1` uses the sentinel `0`:
/// the quotient is `x` itself.
fn step_magic(step: u64) -> u64 {
    debug_assert!(0 < step && step < 1 << 32);
    if step == 1 {
        0
    } else {
        u64::MAX / step + 1
    }
}

/// `x / step` via the precomputed `magic` (see [`step_magic`]).
#[inline(always)]
fn div_by_step(x: u64, magic: u64) -> u64 {
    if magic == 0 {
        x
    } else {
        ((x as u128 * magic as u128) >> 64) as u64
    }
}

/// One compiled node. Parameters index into the [`FlatTree`] pools.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum FlatNode {
    /// `leaf_rules[start..end]` scanned in precedence order.
    Leaf { start: u32, end: u32 },
    /// Equal-size cut: child index is `min((v - lo) / step, ncuts-1)`;
    /// children are `children[base..base+ncuts]`. `magic` is the
    /// precomputed reciprocal of `step`.
    Cut { dim: u8, lo: u64, magic: u64, ncuts: u32, base: u32 },
    /// Simultaneous cuts: dims are `cut_dims[dstart..dend]`, children
    /// row-major at `base`.
    MultiCut { dstart: u32, dend: u32, base: u32 },
    /// Unequal cut: boundaries are `bounds[bstart..bend]`; child `i`
    /// covers `[bounds[i], bounds[i+1])`; children at `base`.
    DenseCut { dim: u8, bstart: u32, bend: u32, base: u32 },
    /// Binary threshold split.
    Split { dim: u8, threshold: u64, left: u32, right: u32 },
    /// All of `children[start..end]` are searched; best precedence wins.
    Partition { start: u32, end: u32 },
}

/// Per-dimension parameters of one multicut axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct FlatCutDim {
    dim: u8,
    lo: u64,
    /// Reciprocal of the cut step (see [`step_magic`]).
    magic: u64,
    ncuts: u32,
}

/// Outcome of advancing one lookup by one node.
enum Step {
    /// Continue at this node.
    Descend(u32),
    /// Lookup finished with this winning table rank (if any).
    Done(Option<u32>),
}

/// A compiled decision tree (see module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatTree {
    /// Compiled nodes in breadth-first order; the root is node 0.
    nodes: Vec<FlatNode>,
    children: Vec<u32>,
    leaf_rules: Vec<u32>,
    bounds: Vec<u64>,
    cut_dims: Vec<FlatCutDim>,
    /// SoA rule store, dimension-major: the lower bound of rule `rank`
    /// in dimension `d` is `rule_lo[d * num_rules + rank]`. Ranks are
    /// precedence order (rank 0 wins every tie), so `leaf_rules` and
    /// the scan below never consult priorities.
    rule_lo: Vec<u64>,
    /// Exclusive upper bounds, same layout as `rule_lo`.
    rule_hi: Vec<u64>,
    /// Cache-packed scan copy of the rule bounds: entry `j` of
    /// `leaf_rules` owns `leaf_bounds[16j..16j+16]` — eight lower
    /// bounds then eight **inclusive** upper bounds (five real
    /// dimensions plus always-true padding lanes; see [`LEAF_ENTRY`]).
    /// A leaf scan walks these sequentially — one 64-byte line per
    /// rule in prefetch order — instead of gathering from five
    /// rank-indexed arrays. `u32` is lossless here: every dimension's
    /// values fit in 32 bits, and a degenerate empty range is encoded
    /// as the unsatisfiable lane `[1, 0]` rather than wrapping.
    leaf_bounds: Vec<u32>,
    /// `rank ->` original rule id in the source tree's arena.
    orig_ids: Vec<u32>,
    /// `rank ->` rule priority. Table order already encodes precedence,
    /// so lookups never read this; it exists for the live-update layer
    /// ([`crate::serve`]), which must merge compiled matches against
    /// not-yet-compiled overlay inserts by (priority, id) precedence.
    rule_prio: Vec<i32>,
    /// Ranks retired in place by [`Self::patch_delete`] since compile.
    retired: u32,
    /// [`DecisionTree::generation`] of the source tree at compile time
    /// (advanced again by each applied patch). A snapshot whose
    /// generation disagrees with its tree is **stale**: the tree has
    /// mutated since, and lookups may return wrong matches.
    generation: u64,
    root: u32,
}

/// A compiled snapshot no longer matches its source tree: the tree has
/// seen updates the snapshot was never told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleTreeError {
    /// Generation the snapshot was compiled from / patched up to.
    pub compiled: u64,
    /// The tree's current generation.
    pub current: u64,
}

impl std::fmt::Display for StaleTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale FlatTree: compiled at tree generation {}, tree is now at {}",
            self.compiled, self.current
        )
    }
}

impl std::error::Error for StaleTreeError {}

impl FlatTree {
    /// Compile a built tree. Deleted rules are dropped; node ids are
    /// renumbered breadth-first; lookup behaviour is preserved exactly.
    // nc-lint: allow(no-panic-in-serving, reason = "compile-time construction: every table index is minted by this renumbering pass, not taken from runtime input")
    pub fn compile(tree: &DecisionTree) -> FlatTree {
        // Active rules in precedence order; remember original ids.
        let mut order: Vec<RuleId> =
            (0..tree.rules().len()).filter(|&r| tree.is_active(r)).collect();
        order.sort_by(|&a, &b| tree.rule(b).priority.cmp(&tree.rule(a).priority).then(a.cmp(&b)));
        let mut table_index = vec![u32::MAX; tree.rules().len()];
        let n = order.len();
        let mut rule_lo = vec![0u64; NUM_DIMS * n];
        let mut rule_hi = vec![0u64; NUM_DIMS * n];
        let mut orig_ids = Vec::with_capacity(n);
        let mut rule_prio = Vec::with_capacity(n);
        for (rank, &r) in order.iter().enumerate() {
            table_index[r] = rank as u32;
            orig_ids.push(r as u32);
            rule_prio.push(tree.rule(r).priority);
            let rule = tree.rule(r);
            for d in 0..NUM_DIMS {
                rule_lo[d * n + rank] = rule.ranges[d].lo;
                rule_hi[d * n + rank] = rule.ranges[d].hi;
            }
        }

        // Breadth-first renumbering: hot upper levels become the first
        // entries of `nodes` (and their pool slices the first entries
        // of `children`/`leaf_rules`), packing them into shared cache
        // lines. Every arena node is reachable from the root, but any
        // stragglers are appended so the node count is preserved.
        let mut bfs: Vec<usize> = Vec::with_capacity(tree.num_nodes());
        let mut new_id = vec![u32::MAX; tree.num_nodes()];
        let mut queue = VecDeque::from([tree.root()]);
        new_id[tree.root()] = 0;
        while let Some(old) = queue.pop_front() {
            bfs.push(old);
            for &c in tree.node(old).kind.children() {
                if new_id[c] == u32::MAX {
                    new_id[c] = (bfs.len() + queue.len()) as u32;
                    queue.push_back(c);
                }
            }
        }
        for (old, nid) in new_id.iter_mut().enumerate() {
            if *nid == u32::MAX {
                *nid = bfs.len() as u32;
                bfs.push(old);
            }
        }

        let mut flat = FlatTree {
            nodes: Vec::with_capacity(tree.num_nodes()),
            children: Vec::new(),
            leaf_rules: Vec::new(),
            bounds: Vec::new(),
            cut_dims: Vec::new(),
            rule_lo,
            rule_hi,
            leaf_bounds: Vec::new(),
            orig_ids,
            rule_prio,
            retired: 0,
            generation: tree.generation(),
            root: 0,
        };

        for &old in &bfs {
            let node = tree.node(old);
            let compiled = match &node.kind {
                NodeKind::Leaf => {
                    let start = flat.leaf_rules.len() as u32;
                    for &r in tree.rules_at(old).iter().filter(|&&r| tree.is_active(r)) {
                        flat.leaf_rules.push(table_index[r]);
                        let ranges = &tree.rule(r).ranges;
                        // Padding lanes are always-true; a degenerate
                        // empty range (lo >= hi, matches nothing) gets
                        // the unsatisfiable lane [1, 0] so the rule
                        // never wins, exactly like `Rule::matches`.
                        let lane_bounds = |lane: usize| -> (u32, u32) {
                            match ranges.get(lane) {
                                None => (0, u32::MAX),
                                Some(rg) if rg.is_empty() => (1, 0),
                                Some(rg) => {
                                    debug_assert!(rg.hi <= 1 << 32);
                                    (rg.lo as u32, (rg.hi - 1) as u32)
                                }
                            }
                        };
                        for lane in 0..LEAF_LANES {
                            flat.leaf_bounds.push(lane_bounds(lane).0);
                        }
                        for lane in 0..LEAF_LANES {
                            flat.leaf_bounds.push(lane_bounds(lane).1);
                        }
                    }
                    FlatNode::Leaf { start, end: flat.leaf_rules.len() as u32 }
                }
                NodeKind::Cut { dim, ncuts, children } => {
                    let range = node.space.range(*dim);
                    let base = flat.push_children(children, &new_id);
                    FlatNode::Cut {
                        dim: dim.index() as u8,
                        lo: range.lo,
                        magic: step_magic((range.len() / *ncuts as u64).max(1)),
                        ncuts: *ncuts as u32,
                        base,
                    }
                }
                NodeKind::MultiCut { dims, children } => {
                    let dstart = flat.cut_dims.len() as u32;
                    for &(dim, ncuts) in dims {
                        let range = node.space.range(dim);
                        flat.cut_dims.push(FlatCutDim {
                            dim: dim.index() as u8,
                            lo: range.lo,
                            magic: step_magic((range.len() / ncuts as u64).max(1)),
                            ncuts: ncuts as u32,
                        });
                    }
                    let base = flat.push_children(children, &new_id);
                    FlatNode::MultiCut { dstart, dend: flat.cut_dims.len() as u32, base }
                }
                NodeKind::DenseCut { dim, bounds, children } => {
                    let bstart = flat.bounds.len() as u32;
                    flat.bounds.extend_from_slice(bounds);
                    let base = flat.push_children(children, &new_id);
                    FlatNode::DenseCut {
                        dim: dim.index() as u8,
                        bstart,
                        bend: flat.bounds.len() as u32,
                        base,
                    }
                }
                NodeKind::Split { dim, threshold, children } => FlatNode::Split {
                    dim: dim.index() as u8,
                    threshold: *threshold,
                    left: new_id[children[0]],
                    right: new_id[children[1]],
                },
                NodeKind::Partition { children } => {
                    let start = flat.push_children(children, &new_id);
                    FlatNode::Partition { start, end: start + children.len() as u32 }
                }
            };
            flat.nodes.push(compiled);
        }

        // A deployment artifact should hold no slack capacity (and
        // `resident_bytes` reports capacity, not length).
        flat.nodes.shrink_to_fit();
        flat.children.shrink_to_fit();
        flat.leaf_rules.shrink_to_fit();
        flat.leaf_bounds.shrink_to_fit();
        flat.bounds.shrink_to_fit();
        flat.cut_dims.shrink_to_fit();
        flat.rule_prio.shrink_to_fit();
        flat
    }

    // nc-lint: allow(no-panic-in-serving, reason = "new_id is indexed by arena ids the compile BFS just renumbered")
    fn push_children(&mut self, children: &[usize], new_id: &[u32]) -> u32 {
        let base = self.children.len() as u32;
        self.children.extend(children.iter().map(|&c| new_id[c]));
        base
    }

    /// Number of compiled nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of active rules in the compiled table (compiled entries
    /// minus ranks retired in place by [`Self::patch_delete`]).
    pub fn num_rules(&self) -> usize {
        self.orig_ids.len() - self.retired as usize
    }

    /// The tree generation this snapshot was compiled from (or patched
    /// up to). See [`DecisionTree::generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when `tree` has mutated since this snapshot was compiled /
    /// patched: lookups against it may silently return wrong matches.
    pub fn is_stale(&self, tree: &DecisionTree) -> bool {
        self.generation != tree.generation()
    }

    /// Error unless this snapshot still reflects `tree` exactly.
    pub fn check_fresh(&self, tree: &DecisionTree) -> Result<(), StaleTreeError> {
        if self.is_stale(tree) {
            Err(StaleTreeError { compiled: self.generation, current: tree.generation() })
        } else {
            Ok(())
        }
    }

    /// [`Self::classify`], but refusing to serve from a stale snapshot:
    /// errors when `tree` has mutated since this snapshot was compiled.
    pub fn classify_checked(
        &self,
        tree: &DecisionTree,
        packet: &Packet,
    ) -> Result<Option<RuleId>, StaleTreeError> {
        self.check_fresh(tree)?;
        Ok(self.classify(packet))
    }

    /// [`Self::classify_batch`], but refusing to serve from a stale
    /// snapshot (see [`Self::classify_checked`]).
    ///
    /// # Panics
    /// Panics if `packets` and `out` have different lengths.
    pub fn classify_batch_checked(
        &self,
        tree: &DecisionTree,
        packets: &[Packet],
        out: &mut [Option<RuleId>],
    ) -> Result<(), StaleTreeError> {
        self.check_fresh(tree)?;
        self.classify_batch(packets, out);
        Ok(())
    }

    /// Retire one rule **in place**: stamp every leaf-scan entry of the
    /// rule's rank with the unsatisfiable bounds lane `[1, 0]`, so the
    /// scan skips it and the runner-up in each touched leaf wins —
    /// exactly what a recompile without the rule would produce. This is
    /// the cheap below-threshold delete path of the live-update layer:
    /// no node renumbering, no pool rebuilds, no rank shifts. (The
    /// scans here — rank lookup over `orig_ids`, entry sweep over
    /// `leaf_rules` — are linear but cache-sequential over `u32`
    /// arrays; in the live handle the cost of a patched delete is
    /// dominated by the copy-on-write clone of the snapshot, not by
    /// the patch.)
    ///
    /// `generation` is the tree generation the patched snapshot will
    /// claim to serve ([`Self::is_stale`] compares against it), so it
    /// is the **caller's freshness assertion**: pass the tree's current
    /// generation only when this patch makes the snapshot reflect the
    /// tree exactly (no other unapplied mutations, e.g. pending overlay
    /// inserts); pass `self.generation()` to leave the stamp — and the
    /// staleness verdict — unchanged. A patch that finds nothing to
    /// retire never touches the stamp.
    ///
    /// Returns the number of leaf entries stamped (0 when the id is not
    /// in the compiled table — e.g. it was inserted after compile). The
    /// caller must not retire the same id twice (the tree-side delete
    /// already errors on double deletes).
    // nc-lint: allow(no-panic-in-serving, reason = "leaf table spans were minted by compile; the found rank bounds every slice by construction")
    pub fn patch_delete(&mut self, id: RuleId, generation: u64) -> usize {
        let Some(rank) = self.orig_ids.iter().position(|&o| o as usize == id) else {
            return 0;
        };
        self.generation = generation;
        let rank = rank as u32;
        let mut stamped = 0usize;
        for j in 0..self.leaf_rules.len() {
            if self.leaf_rules[j] == rank {
                self.leaf_bounds[j * LEAF_ENTRY] = 1;
                self.leaf_bounds[j * LEAF_ENTRY + LEAF_LANES] = 0;
                stamped += 1;
            }
        }
        self.retired += 1;
        stamped
    }

    /// Resident heap + inline size of the compiled structure, in bytes.
    ///
    /// Counted exactly: the `FlatTree` struct itself plus the *capacity*
    /// (not just the length) of every backing array — nodes, child and
    /// leaf-rule pools, dense-cut boundaries, multicut axes, the SoA
    /// rule store (`lo`/`hi` per dimension plus the rank-to-id map),
    /// the rank-priority table, and the cache-packed leaf scan copy of
    /// the bounds. Nothing in
    /// the structure owns further heap (rule bounds are inlined into
    /// the arrays), so this is the full footprint.
    pub fn resident_bytes(&self) -> usize {
        fn heap<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>()
        }
        std::mem::size_of::<Self>()
            + heap(&self.nodes)
            + heap(&self.children)
            + heap(&self.leaf_rules)
            + heap(&self.bounds)
            + heap(&self.cut_dims)
            + heap(&self.rule_lo)
            + heap(&self.rule_hi)
            + heap(&self.leaf_bounds)
            + heap(&self.orig_ids)
            + heap(&self.rule_prio)
    }

    /// Scan `leaf_rules[start..end]` (ascending rank = precedence
    /// order) for the first rule containing the packet.
    ///
    /// Bounds come from the cache-packed `leaf_bounds` copy, and the
    /// dimension test is evaluated branch-free (`&`, not `&&`) over
    /// the padded 8-lane halves: whether one dimension matches is
    /// data-dependent and would mispredict, while the one per-rule
    /// "matched?" branch is almost always false until the winner. The
    /// fixed-width lane loops vectorise, and `chunks_exact` keeps the
    /// compares free of per-element bounds checks.
    // nc-lint: kernel
    #[inline]
    fn leaf_scan(&self, start: u32, end: u32, packet: &Packet) -> Option<u32> {
        let mut pv = [0u32; LEAF_LANES];
        for (lane, &v) in pv.iter_mut().zip(&packet.values) {
            *lane = v as u32;
        }
        let (s, e) = (start as usize, end as usize);
        let entries = self.leaf_bounds[s * LEAF_ENTRY..e * LEAF_ENTRY]
            .chunks_exact(LEAF_ENTRY)
            .zip(&self.leaf_rules[s..e]);
        for (b, &rank) in entries {
            let (los, his) = b.split_at(LEAF_LANES);
            let mut matched = true;
            for lane in 0..LEAF_LANES {
                matched &= pv[lane] >= los[lane];
            }
            for lane in 0..LEAF_LANES {
                matched &= pv[lane] <= his[lane];
            }
            if matched {
                return Some(rank);
            }
        }
        None
    }

    /// Advance a lookup at `id` by one node.
    // nc-lint: kernel
    #[inline]
    fn step(&self, id: u32, packet: &Packet) -> Step {
        match self.nodes[id as usize] {
            FlatNode::Leaf { start, end } => Step::Done(self.leaf_scan(start, end, packet)),
            FlatNode::Cut { dim, lo, magic, ncuts, base } => {
                let v = packet.values[dim as usize];
                let idx = div_by_step(v.saturating_sub(lo), magic).min(u64::from(ncuts) - 1) as u32;
                Step::Descend(self.children[(base + idx) as usize])
            }
            FlatNode::MultiCut { dstart, dend, base } => {
                let mut idx = 0u32;
                for cd in &self.cut_dims[dstart as usize..dend as usize] {
                    let v = packet.values[cd.dim as usize];
                    let i = div_by_step(v.saturating_sub(cd.lo), cd.magic)
                        .min(u64::from(cd.ncuts) - 1) as u32;
                    idx = idx * cd.ncuts + i;
                }
                Step::Descend(self.children[(base + idx) as usize])
            }
            FlatNode::DenseCut { dim, bstart, bend, base } => {
                let v = packet.values[dim as usize];
                let bounds = &self.bounds[bstart as usize..bend as usize];
                let idx =
                    bounds.partition_point(|&b| b <= v).saturating_sub(1).min(bounds.len() - 2)
                        as u32;
                Step::Descend(self.children[(base + idx) as usize])
            }
            FlatNode::Split { dim, threshold, left, right } => {
                Step::Descend(if packet.values[dim as usize] < threshold { left } else { right })
            }
            FlatNode::Partition { start, end } => {
                let mut best: Option<u32> = None;
                for &c in &self.children[start as usize..end as usize] {
                    if let Some(ti) = self.classify_from(c, packet) {
                        // Table order *is* precedence order.
                        if best.is_none_or(|b| ti < b) {
                            best = Some(ti);
                        }
                    }
                }
                Step::Done(best)
            }
        }
    }

    /// Classify a packet: the **original** rule id of the highest-
    /// precedence match, identical to the source tree's `classify`.
    pub fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.classify_rank(packet).map(|rank| self.rank_to_id(rank))
    }

    /// Classify a packet to its winning **table rank** (ranks are dense
    /// precedence order: rank 0 wins every comparison). The live-update
    /// layer merges ranks against overlay inserts by priority.
    pub fn classify_rank(&self, packet: &Packet) -> Option<u32> {
        self.classify_from(self.root, packet)
    }

    /// The original arena rule id behind a table rank.
    // nc-lint: kernel
    pub fn rank_to_id(&self, rank: u32) -> RuleId {
        self.orig_ids[rank as usize] as RuleId
    }

    /// The priority of the rule at a table rank.
    // nc-lint: kernel
    pub fn rank_priority(&self, rank: u32) -> i32 {
        self.rule_prio[rank as usize]
    }

    /// Returns the winning *table* rank (precedence order), or `None`.
    ///
    /// The loop tests the dominant node kinds (equal-size cuts, then
    /// leaves, then splits) with cheap conditional branches before
    /// falling back to the full dispatch: a `match` over all six
    /// variants compiles to an indirect jump whose target is
    /// data-dependent and mispredicts every level, while "is it a
    /// Cut?" is predicted almost perfectly on cut-built trees.
    // nc-lint: kernel
    fn classify_from(&self, mut id: u32, packet: &Packet) -> Option<u32> {
        loop {
            let node = &self.nodes[id as usize];
            if let FlatNode::Cut { dim, lo, magic, ncuts, base } = *node {
                let v = packet.values[dim as usize];
                let idx = div_by_step(v.saturating_sub(lo), magic).min(u64::from(ncuts) - 1) as u32;
                id = self.children[(base + idx) as usize];
                continue;
            }
            if let FlatNode::Leaf { start, end } = *node {
                return self.leaf_scan(start, end, packet);
            }
            if let FlatNode::Split { dim, threshold, left, right } = *node {
                id = if packet.values[dim as usize] < threshold { left } else { right };
                continue;
            }
            match self.step(id, packet) {
                Step::Descend(next) => id = next,
                Step::Done(result) => return result,
            }
        }
    }

    /// Classify a batch of packets into `out` (same length), returning
    /// exactly what per-packet [`FlatTree::classify`] would.
    ///
    /// Traversal is an interleaved wavefront (the per-subtree rank
    /// walk behind [`FlatTree::classify_batch_with`]): all packets
    /// advance through
    /// the tree level by level, which hides node-fetch latency that a
    /// one-packet-at-a-time loop would serialise behind each packet's
    /// root-to-leaf dependence chain.
    ///
    /// # Panics
    /// Panics if `packets` and `out` have different lengths.
    // nc-lint: kernel
    pub fn classify_batch(&self, packets: &[Packet], out: &mut [Option<RuleId>]) {
        // nc-lint: allow(no-panic-in-serving, error-taxonomy, reason = "documented length-contract guard (see # Panics); misuse is a caller bug, not runtime input")
        assert_eq!(packets.len(), out.len(), "output slice must match the batch");
        self.classify_batch_with(packets, |pi, rank| {
            out[pi] = rank.map(|rank| self.orig_ids[rank as usize] as RuleId);
        });
    }

    /// The batched wavefront lookup, reporting winning **table ranks**:
    /// `emit(packet_index, rank)` is called exactly once per packet, in
    /// no particular order. [`Self::classify_batch`] is this plus the
    /// rank-to-id mapping; the live-update layer consumes the ranks
    /// directly to merge against its overlay by precedence.
    // nc-lint: kernel
    pub fn classify_batch_with<F: FnMut(usize, Option<u32>)>(
        &self,
        packets: &[Packet],
        mut emit: F,
    ) {
        if let FlatNode::Partition { start, end } = self.nodes[self.root as usize] {
            // A root partition (EffiCuts / CutSplit separable trees)
            // would force every packet through the scalar fallback.
            // Instead, wavefront the whole batch through each subtree
            // and merge per packet by rank (table order is precedence
            // order), which is exactly what the scalar path computes.
            // nc-lint: allow(no-alloc-in-kernels, reason = "one amortised rank buffer per batch at a root partition, not per packet")
            let mut best = vec![NO_RANK; packets.len()];
            for &c in &self.children[start as usize..end as usize] {
                self.classify_batch_ranks(c, packets, |pi, rank| {
                    if let Some(rank) = rank {
                        best[pi] = best[pi].min(rank);
                    }
                });
            }
            for (pi, &rank) in best.iter().enumerate() {
                emit(pi, (rank != NO_RANK).then_some(rank));
            }
        } else {
            self.classify_batch_ranks(self.root, packets, emit);
        }
    }

    /// The wavefront core: classify every packet starting from node
    /// `from`, reporting each packet's winning table rank (or `None`)
    /// through `emit` exactly once, in no particular order.
    ///
    /// Traversal is level-synchronous: a frontier of `(packet, node)`
    /// pairs advances every in-flight packet by one node per round.
    /// Within a round the iterations are fully independent — no
    /// packet's next node depends on another's — so the CPU can keep
    /// many node fetches in flight at once instead of serialising on
    /// one packet's root-to-leaf dependence chain. Finished packets
    /// (leaf reached, or interior partition resolved via the scalar
    /// path) simply drop out of the next round's frontier.
    // nc-lint: kernel
    fn classify_batch_ranks<F: FnMut(usize, Option<u32>)>(
        &self,
        from: u32,
        packets: &[Packet],
        mut emit: F,
    ) {
        // nc-lint: allow(no-alloc-in-kernels, reason = "one frontier allocation per batch, amortised over every packet in it")
        let mut frontier: Vec<(u32, u32)> = (0..packets.len() as u32).map(|i| (i, from)).collect();
        // nc-lint: allow(no-alloc-in-kernels, reason = "second frontier buffer, swapped and reused across wavefront rounds")
        let mut next_round: Vec<(u32, u32)> = Vec::with_capacity(frontier.len());
        while !frontier.is_empty() {
            for &(pi, nid) in &frontier {
                let packet = &packets[pi as usize];
                // One full dispatch per packet per round. Because a
                // round holds one tree level, the node kinds it meets
                // are near-homogeneous and the dispatch branch stays
                // well predicted — unlike the scalar loop, which
                // alternates kinds along each root-to-leaf path.
                match self.nodes[nid as usize] {
                    FlatNode::Cut { dim, lo, magic, ncuts, base } => {
                        let v = packet.values[dim as usize];
                        let idx = div_by_step(v.saturating_sub(lo), magic).min(u64::from(ncuts) - 1)
                            as u32;
                        next_round.push((pi, self.children[(base + idx) as usize]));
                    }
                    FlatNode::Leaf { start, end } => {
                        emit(pi as usize, self.leaf_scan(start, end, packet));
                    }
                    _ => match self.step(nid, packet) {
                        Step::Descend(id) => next_round.push((pi, id)),
                        Step::Done(result) => emit(pi as usize, result),
                    },
                }
            }
            std::mem::swap(&mut frontier, &mut next_round);
            next_round.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, Rule, TraceConfig,
    };

    fn agreement_check(tree: &DecisionTree, rules: &classbench::RuleSet, probes: usize) {
        let flat = FlatTree::compile(tree);
        assert_eq!(flat.num_nodes(), tree.num_nodes());
        let trace = generate_trace(rules, &TraceConfig::new(probes).with_seed(91));
        for p in &trace {
            assert_eq!(flat.classify(p), tree.classify(p), "at {p}");
        }
        // The batched path returns bit-identical results.
        let mut batch = vec![None; trace.len()];
        flat.classify_batch(&trace, &mut batch);
        for (p, got) in trace.iter().zip(&batch) {
            assert_eq!(*got, flat.classify(p), "batch at {p}");
        }
    }

    #[test]
    fn compiled_cut_tree_agrees() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(90));
        let mut tree = DecisionTree::new(&rules);
        let kids = tree.cut_node(tree.root(), Dim::SrcIp, 8);
        for k in kids {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstPort, 4);
            }
        }
        agreement_check(&tree, &rules, 500);
    }

    #[test]
    fn compiled_mixed_kinds_agree() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 150).with_seed(92));
        let mut tree = DecisionTree::new(&rules);
        let all = tree.rules_at(tree.root()).to_vec();
        let (a, b) = all.split_at(all.len() / 2);
        let parts = tree.partition_node(tree.root(), vec![a.to_vec(), b.to_vec()]);
        tree.multicut_node(parts[0], &[(Dim::SrcIp, 4), (Dim::Proto, 2)]);
        tree.split_node(parts[1], Dim::DstPort, 1024);
        let leaves: Vec<usize> = tree.leaf_ids().collect();
        for id in leaves {
            let range = *tree.node(id).space.range(Dim::SrcPort);
            if range.len() > 4096 && tree.node(id).num_rules() > 4 {
                let mid1 = range.lo + range.len() / 3;
                let mid2 = range.lo + 2 * range.len() / 3;
                tree.dense_cut_node(id, Dim::SrcPort, vec![range.lo, mid1, mid2, range.hi]);
                break;
            }
        }
        agreement_check(&tree, &rules, 600);
    }

    #[test]
    fn compiled_tree_drops_deleted_rules() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(93));
        let mut tree = DecisionTree::new(&rules);
        tree.cut_node(tree.root(), Dim::DstIp, 8);
        let top = tree.rules().iter().map(|r| r.priority).max().unwrap();
        let id = crate::updates::insert_rule(&mut tree, Rule::default_rule(top + 1));
        crate::updates::delete_rule(&mut tree, id).unwrap();
        let flat = FlatTree::compile(&tree);
        assert_eq!(flat.num_rules(), tree.num_active_rules());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(94));
        for p in &trace {
            assert_eq!(flat.classify(p), tree.classify(p));
        }
    }

    #[test]
    fn compiled_tree_roundtrips_through_serde() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 100).with_seed(95));
        let mut tree = DecisionTree::new(&rules);
        tree.cut_node(tree.root(), Dim::SrcIp, 16);
        let flat = FlatTree::compile(&tree);
        let json = serde_json::to_string(&flat).unwrap();
        let restored: FlatTree = serde_json::from_str(&json).unwrap();
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(96));
        for p in &trace {
            assert_eq!(flat.classify(p), restored.classify(p));
        }
    }

    #[test]
    fn resident_bytes_is_positive_and_scales() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(97));
        let mut small_tree = DecisionTree::new(&rules);
        let small = FlatTree::compile(&small_tree).resident_bytes();
        small_tree.cut_node(small_tree.root(), Dim::SrcIp, 32);
        let bigger = FlatTree::compile(&small_tree).resident_bytes();
        assert!(small > 0);
        assert!(bigger > small);
    }

    #[test]
    fn resident_bytes_counts_every_pool_exactly() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 40).with_seed(98));
        let mut tree = DecisionTree::new(&rules);
        tree.cut_node(tree.root(), Dim::SrcIp, 4);
        let flat = FlatTree::compile(&tree);
        let expected = std::mem::size_of::<FlatTree>()
            + flat.nodes.capacity() * std::mem::size_of::<FlatNode>()
            + flat.children.capacity() * 4
            + flat.leaf_rules.capacity() * 4
            + flat.bounds.capacity() * 8
            + flat.cut_dims.capacity() * std::mem::size_of::<FlatCutDim>()
            + flat.rule_lo.capacity() * 8
            + flat.rule_hi.capacity() * 8
            + flat.leaf_bounds.capacity() * 4
            + flat.orig_ids.capacity() * 4
            + flat.rule_prio.capacity() * 4;
        assert_eq!(flat.resident_bytes(), expected);
        // The SoA store must account for every active rule in every dim,
        // and the scan copy for every leaf entry in every lane.
        assert_eq!(flat.rule_lo.len(), NUM_DIMS * flat.num_rules());
        assert_eq!(flat.rule_hi.len(), NUM_DIMS * flat.num_rules());
        assert_eq!(flat.leaf_bounds.len(), LEAF_ENTRY * flat.leaf_rules.len());
    }

    #[test]
    fn nodes_are_breadth_first_ordered() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(99));
        let mut tree = DecisionTree::new(&rules);
        let kids = tree.cut_node(tree.root(), Dim::SrcIp, 4);
        for k in kids {
            if !tree.is_terminal(k, 4) {
                tree.cut_node(k, Dim::DstIp, 4);
            }
        }
        let flat = FlatTree::compile(&tree);
        assert_eq!(flat.root, 0);
        // In BFS order every parent precedes its children, and the
        // direct children of the root are the very next nodes.
        match flat.nodes[0] {
            FlatNode::Cut { base, ncuts, .. } => {
                let first: Vec<u32> =
                    flat.children[base as usize..(base + ncuts) as usize].to_vec();
                assert_eq!(first, (1..=ncuts).collect::<Vec<u32>>());
            }
            ref other => panic!("root should be the cut node, got {other:?}"),
        }
    }

    #[test]
    fn reciprocal_division_matches_hardware_division() {
        // Deterministic sweep over awkward steps and 32-bit dividends.
        let steps = [1u64, 2, 3, 5, 7, 10, 255, 256, 1 << 16, (1 << 16) + 1, 0x8000_0000 - 1];
        let xs = [0u64, 1, 2, 1023, 65_535, 1 << 20, u32::MAX as u64 - 1, u32::MAX as u64];
        for &s in &steps {
            let magic = step_magic(s);
            for &x in &xs {
                assert_eq!(div_by_step(x, magic), x / s, "x={x} step={s}");
            }
        }
    }

    #[test]
    fn batch_handles_empty_and_odd_sizes() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 90).with_seed(89));
        let mut tree = DecisionTree::new(&rules);
        tree.cut_node(tree.root(), Dim::DstIp, 8);
        let flat = FlatTree::compile(&tree);
        for len in [0usize, 1, 2, 15, 16, 19, 100] {
            let trace = generate_trace(&rules, &TraceConfig::new(len).with_seed(len as u64));
            let mut out = vec![None; len];
            flat.classify_batch(&trace, &mut out);
            for (p, got) in trace.iter().zip(&out) {
                assert_eq!(*got, flat.classify(p), "len={len} at {p}");
            }
        }
    }

    #[test]
    fn empty_range_rule_never_matches_on_any_path() {
        use classbench::{DimRange, RuleSet};
        // A degenerate rule (empty SrcPort range) is legal in the rule
        // arena and lands in the root leaf; no packet may ever match
        // it, on the scalar or the batched path, in debug or release.
        let mut degenerate = Rule::default_rule(9);
        degenerate.ranges[Dim::SrcPort.index()] = DimRange::new(0, 0);
        let rules = RuleSet::new(vec![degenerate, Rule::default_rule(1)]);
        let tree = DecisionTree::new(&rules);
        let flat = FlatTree::compile(&tree);
        let probes = [
            Packet::new(0, 0, 0, 0, 0),
            Packet::new(1, 2, 3, 4, 6),
            Packet::new(u64::from(u32::MAX), 0, 65535, 65535, 255),
        ];
        let mut batch = vec![None; probes.len()];
        flat.classify_batch(&probes, &mut batch);
        for (p, &batched) in probes.iter().zip(&batch) {
            assert_eq!(tree.classify(p), Some(1), "at {p}");
            assert_eq!(flat.classify(p), Some(1), "at {p}");
            assert_eq!(batched, Some(1), "at {p}");
        }
    }

    #[test]
    fn stale_snapshot_is_detected_and_refused() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(88));
        let mut tree = DecisionTree::new(&rules);
        tree.cut_node(tree.root(), Dim::SrcIp, 4);
        let flat = FlatTree::compile(&tree);
        assert_eq!(flat.generation(), tree.generation());
        assert!(!flat.is_stale(&tree));
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(flat.classify_checked(&tree, &p).unwrap(), tree.classify(&p));

        // Any tree mutation makes the deployed snapshot stale, and the
        // checked lookups turn the silent wrong answer into an error.
        let top = tree.rules().iter().map(|r| r.priority).max().unwrap();
        crate::updates::insert_rule(&mut tree, Rule::default_rule(top + 1));
        assert!(flat.is_stale(&tree));
        let err = flat.classify_checked(&tree, &p).unwrap_err();
        assert_eq!(err.compiled, flat.generation());
        assert_eq!(err.current, tree.generation());
        let mut out = vec![None; 1];
        assert!(flat.classify_batch_checked(&tree, &[p], &mut out).is_err());

        // Recompiling restores freshness.
        let fresh = FlatTree::compile(&tree);
        assert!(!fresh.is_stale(&tree));
        assert_eq!(fresh.classify_checked(&tree, &p).unwrap(), tree.classify(&p));
    }

    #[test]
    fn patch_delete_matches_full_recompile() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 120).with_seed(87));
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstPort, 4);
            }
        }
        let mut flat = FlatTree::compile(&tree);
        let before = flat.num_rules();
        // Delete a few arena rules in the tree and patch them out of the
        // compiled snapshot in place.
        for victim in [0usize, 11, 63] {
            crate::updates::delete_rule(&mut tree, victim).unwrap();
            flat.patch_delete(victim, tree.generation());
        }
        assert!(!flat.is_stale(&tree));
        assert_eq!(flat.num_rules(), before - 3);
        assert_eq!(flat.num_rules(), tree.num_active_rules());
        // The patched snapshot serves exactly what a recompile would.
        let recompiled = FlatTree::compile(&tree);
        let trace = generate_trace(&rules, &TraceConfig::new(400).with_seed(86));
        let mut patched_out = vec![None; trace.len()];
        flat.classify_batch(&trace, &mut patched_out);
        for (i, p) in trace.iter().enumerate() {
            assert_eq!(flat.classify(p), recompiled.classify(p), "at {p}");
            assert_eq!(flat.classify(p), tree.classify(p), "vs tree at {p}");
            assert_eq!(patched_out[i], flat.classify(p), "batch at {p}");
        }
        // Patching an id that was never compiled (inserted after
        // compile) is a no-op on the leaf entries.
        let top = tree.rules().iter().map(|r| r.priority).max().unwrap();
        let id = crate::updates::insert_rule(&mut tree, Rule::default_rule(top + 1));
        crate::updates::delete_rule(&mut tree, id).unwrap();
        assert_eq!(flat.patch_delete(id, tree.generation()), 0);
    }

    #[test]
    #[should_panic(expected = "output slice must match")]
    fn batch_rejects_mismatched_output() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 10).with_seed(1));
        let tree = DecisionTree::new(&rules);
        let flat = FlatTree::compile(&tree);
        let trace = generate_trace(&rules, &TraceConfig::new(4).with_seed(1));
        let mut out = vec![None; 3];
        flat.classify_batch(&trace, &mut out);
    }
}
