//! Value-generation strategies.

use crate::TestRng;
use rand::Rng as _;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value from `rng`.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, map: f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.new_value(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// A type-erased strategy arm.
type ArmFn<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between heterogeneous strategies with a common value
/// type — the engine behind [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<ArmFn<T>>,
}

impl<T> Union<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    pub fn or<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(move |rng| strategy.new_value(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        self.arms[rng.gen_range(0..self.arms.len())](rng)
    }
}

/// Uniformly choose one of the argument strategies each case. All arms
/// must share a value type (weights are not supported by this shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let __union = $crate::strategy::Union::new();
        $( let __union = __union.or($arm); )+
        __union
    }};
}
