//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng as _;

/// Anything usable as the size argument of [`vec()`]: an exact length, a
/// half-open range, or an inclusive range.
pub trait IntoSizeRange {
    /// Inclusive minimum, exclusive maximum.
    fn size_bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn size_bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn size_bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn size_bounds(self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// Generate `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.size_bounds();
    assert!(min < max, "empty vec size range");
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..self.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
