//! Shim for `proptest`: the subset this workspace uses, implemented as
//! a deterministic seeded random-case runner.
//!
//! * Strategies: ranges, tuples, [`strategy::Just`], `prop_map`,
//!   [`prop_oneof!`], [`collection::vec`].
//! * Runner: [`proptest!`] expands each test into a plain `#[test]`
//!   that draws `ProptestConfig::cases` inputs from a ChaCha8 stream
//!   seeded by the test's module path and name — fully deterministic
//!   across runs and machines, no persistence files.
//! * `prop_assert!`/`prop_assert_eq!` panic like their `assert!`
//!   cousins (no shrinking, so there is no failure value to minimise).

pub mod collection;
pub mod strategy;

/// Runner RNG type drawn from for every strategy.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Smoke-scale default (real proptest uses 256): keeps the full
    /// workspace suite in the minutes range while still exercising the
    /// properties. Raise per-block with `with_cases` where it matters.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic RNG for a named test: FNV-1a over the name, fed to
/// ChaCha8 as the seed.
pub fn new_test_rng(name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-block macro: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )*
                    let _ = __case;
                    $body
                }
            }
        )*
    };
}

/// Panic-on-failure assertion (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        prop_oneof![Just((1u64, 2u64)), (10..20u64, 30..40u64), (0..5u64).prop_map(|v| (v, v + 1)),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3..17u64, y in -2.0f32..2.0, n in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn oneof_and_collections(pair in arb_pair(),
                                 v in crate::collection::vec(0..100u32, 2..10))
        {
            prop_assert!(pair.0 < pair.1 || (10..20).contains(&pair.0));
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_across_runner_instances() {
        let s = (0..1000u64, 0..1000u64);
        let mut a = crate::new_test_rng("fixed");
        let mut b = crate::new_test_rng("fixed");
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
