//! Shim for `parking_lot`: a `Mutex` with the parking_lot calling
//! convention (`lock()` returns the guard directly, no poisoning),
//! backed by `std::sync::Mutex`.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
