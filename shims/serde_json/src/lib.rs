//! Shim for `serde_json`: text parsing/printing for the serde shim's
//! [`Value`] tree, plus `to_string` / `from_str` / `to_value` /
//! `from_value` and the [`json!`] macro.

mod read;
mod write;

pub use serde::{Deserialize, Error, Map, Number, Serialize, Value};

/// Serialise `value` to its JSON text form.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write_value(&value.serialize_value()))
}

/// Parse JSON text and deserialise into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = read::parse(s)?;
    T::deserialize_value(&value)
}

/// Render any serialisable value as a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Deserialise `T` out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value)
}

/// Build a [`Value`] from a JSON-shaped literal. Keys must be string
/// literals; values are expressions whose types implement `Serialize`
/// (nest further `json!` calls for inner objects/arrays).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert($key, $crate::json!($val)); )*
        $crate::Value::Object(__map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($val) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serialises")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_text() {
        let v = json!({
            "a": 1,
            "b": json!([1.5, -2, true, Value::Null]),
            "c": json!({ "nested": "stri\"ng\n" }),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["a"].as_u64(), Some(1));
        assert_eq!(back["b"][0].as_f64(), Some(1.5));
        assert_eq!(back["c"]["nested"].as_str(), Some("stri\"ng\n"));
        assert!(back["missing"].is_null());
    }

    #[test]
    fn float_fidelity() {
        for x in [0.1f64, 1.0 / 3.0, f64::MAX, -12345.678e-9, 2.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
        let f: f32 = 0.12345678;
        let back: f32 = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": 1").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn index_mut_surgery() {
        let mut v = json!({ "w": json!({ "data": json!([1, 2, 3]) }) });
        v["w"]["data"][1] = json!(9.5);
        assert_eq!(v["w"]["data"][1].as_f64(), Some(9.5));
        v["new_key"] = json!("x");
        assert_eq!(v["new_key"].as_str(), Some("x"));
    }
}
