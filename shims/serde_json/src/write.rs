//! Compact JSON text writer.

use serde::{Number, Value};
use std::fmt::Write as _;

pub fn write_value(value: &Value) -> String {
    let mut out = String::new();
    write_into(&mut out, value);
    out
}

fn write_into(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::PosInt(v)) => {
            let _ = write!(out, "{v}");
        }
        Value::Number(Number::NegInt(v)) => {
            let _ = write!(out, "{v}");
        }
        Value::Number(Number::Float(v)) => {
            if v.is_finite() {
                // `{}` on f64 prints the shortest string that parses
                // back to the same bits — exact round-trips.
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_into(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
