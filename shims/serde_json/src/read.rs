//! Recursive-descent JSON text parser.

use serde::{Error, Map, Number, Value};

pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(pos: usize, msg: &str) -> Error {
    Error::custom(format!("JSON error at byte {pos}: {msg}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected {:?}", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(err(*pos, &format!("unexpected character {:?}", b as char))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut map = Map::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs: combine a high surrogate with
                        // the following \uXXXX low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos + 5..*pos + 7) != Some(b"\\u") {
                                return Err(err(*pos, "unpaired surrogate"));
                            }
                            let lo_hex = bytes
                                .get(*pos + 7..*pos + 11)
                                .ok_or_else(|| err(*pos, "truncated surrogate pair"))?;
                            let lo_hex = std::str::from_utf8(lo_hex)
                                .map_err(|_| err(*pos, "bad surrogate pair"))?;
                            let lo = u32::from_str_radix(lo_hex, 16)
                                .map_err(|_| err(*pos, "bad surrogate pair"))?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| err(*pos, "invalid surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| err(*pos, "invalid code point"))?
                        };
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // at char boundaries is safe via the str API).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return Err(err(*pos, "control character in string"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if is_float {
        let v: f64 = text.parse().map_err(|_| err(start, "bad number"))?;
        return Ok(Value::Number(Number::Float(v)));
    }
    if text.starts_with('-') {
        match text.parse::<i64>() {
            Ok(v) => Ok(Value::Number(Number::NegInt(v))),
            Err(_) => {
                let v: f64 = text.parse().map_err(|_| err(start, "bad number"))?;
                Ok(Value::Number(Number::Float(v)))
            }
        }
    } else {
        match text.parse::<u64>() {
            Ok(v) => Ok(Value::Number(Number::PosInt(v))),
            Err(_) => {
                let v: f64 = text.parse().map_err(|_| err(start, "bad number"))?;
                Ok(Value::Number(Number::Float(v)))
            }
        }
    }
}
