//! Shim for `criterion`: the group/bencher API surface this
//! workspace's benches use, over a simple adaptive wall-clock loop.
//! No statistics, plots, or baselines — one mean-time line per bench,
//! so `cargo bench` runs and reports something useful offline.

use std::time::{Duration, Instant};

/// Per-iteration time budget for one bench measurement.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, 20, None, f);
        self
    }
}

/// Throughput annotation: reported as elements (or bytes) per second.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    sample_size: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `f`: one warm-up call, then an adaptive number of timed
    /// iterations (capped by the group's `sample_size`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed();
        let iters = if once.is_zero() {
            self.sample_size
        } else {
            (TARGET_MEASURE_TIME.as_nanos() / once.as_nanos().max(1))
                .clamp(1, self.sample_size as u128) as usize
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.mean = Some(start.elapsed() / iters as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { sample_size, mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => {
            let rate = throughput
                .map(|t| {
                    let (count, unit) = match t {
                        Throughput::Elements(n) => (n, "elem"),
                        Throughput::Bytes(n) => (n, "B"),
                    };
                    let per_sec = count as f64 / mean.as_secs_f64();
                    format!("  ({per_sec:.3e} {unit}/s)")
                })
                .unwrap_or_default();
            println!("{label:<50} time: {:>12}{rate}", format_duration(mean));
        }
        None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        let input = vec![1u64; 100];
        group.bench_with_input(BenchmarkId::new("sum", 100), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
