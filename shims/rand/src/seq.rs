//! Slice helpers: `choose` and `shuffle` (Fisher–Yates).

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StepRng(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
