//! Shim for `rand` 0.8: the trait surface this workspace uses.
//!
//! Provides [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (including the splitmix64-based `seed_from_u64`),
//! [`seq::SliceRandom`] (`choose`, `shuffle`), and a `prelude`.
//! Deterministic per seed; no thread-local or OS entropy sources.

pub mod seq;

/// Core random source: 32/64-bit words and byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly from raw RNG output (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Element types uniformly samplable from a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Widening-multiply map of a 64-bit draw onto the span.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    let bytes = rng.next_u64().to_le_bytes();
                    let n = std::mem::size_of::<$t>();
                    return <$t>::from_le_bytes(bytes[..n].try_into().unwrap());
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 + 1;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

int_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t as Standard>::from_rng(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::from_rng(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`]. Generic over the element
/// type (as in rand 0.8) so integer literals unify with the call site's
/// expected type.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic RNG construction.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a full seed from a `u64` via splitmix64 (as upstream rand
    /// does), so nearby integer seeds give unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StepRng(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
