//! Shim for `rand_chacha`: a real ChaCha-core RNG with 8 rounds.
//!
//! The word stream is *not* byte-identical to upstream `rand_chacha`
//! (block/nonce layout differs); what the workspace relies on —
//! high-quality, deterministic-per-seed streams — holds.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word in `block`.
    word: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        // ChaCha8: 8 rounds = 4 double rounds.
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut rng = ChaCha8Rng { key, counter: 0, block: [0; 16], word: 16 };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.02, "bucket {frac}");
        }
    }
}
