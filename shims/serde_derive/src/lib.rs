//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the serde shim. Parses the item from raw token trees (no syn/quote
//! in this offline environment) and emits impls of the shim's
//! `serialize_value` / `deserialize_value` traits with serde's external
//! data shapes: structs as field-name objects, unit enum variants as
//! bare strings, data variants externally tagged.
//!
//! Supported items: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like. Generic items
//! produce a `compile_error!` — nothing in this workspace derives on a
//! generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match which {
            Trait::Serialize => gen_serialize(&item),
            Trait::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive shim generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut Iter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens up to (and including) the next top-level `,`, tracking
/// `<...>` nesting so commas inside generic arguments don't terminate.
/// Returns false when the iterator is exhausted instead.
fn skip_past_comma(iter: &mut Iter) -> bool {
    let mut angle: i32 = 0;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, got {other:?}")),
                }
                if !skip_past_comma(&mut iter) {
                    return Ok(names);
                }
            }
            None => return Ok(names),
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter: Iter = stream.into_iter().peekable();
    if iter.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    while skip_past_comma(&mut iter) {
        if iter.peek().is_some() {
            count += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(variants),
            Some(other) => return Err(format!("unexpected token in enum: {other}")),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_past_comma(&mut iter);
        variants.push((name, fields));
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter: Iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind_kw = match iter.next() {
        Some(TokenTree::Ident(id)) => {
            let s = id.to_string();
            if s != "struct" && s != "enum" {
                return Err(format!("cannot derive for `{s}` items"));
            }
            s
        }
        Some(other) => return Err(format!("unexpected token {other}")),
        None => return Err("empty derive input".into()),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde shim derive does not support generics on `{name}`"));
        }
    }
    let kind = if kind_kw == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };
    Ok(Item { name, kind })
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                s += &format!(
                    "__map.insert({f:?}, ::serde::Serialize::serialize_value(&self.{f}));\n"
                );
            }
            s += "::serde::Value::Object(__map)";
            s
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize_value(&self.0)".into(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".into(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms +=
                            &format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n");
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms += &format!(
                            "{name}::{v}({}) => {{ let mut __map = ::serde::Map::new(); \
                             __map.insert({v:?}, {inner}); ::serde::Value::Object(__map) }}\n",
                            binds.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fs {
                            inner += &format!(
                                "__inner.insert({f:?}, ::serde::Serialize::serialize_value({f}));\n"
                            );
                        }
                        arms += &format!(
                            "{name}::{v} {{ {binds} }} => {{ {inner} \
                             let mut __map = ::serde::Map::new(); \
                             __map.insert({v:?}, ::serde::Value::Object(__inner)); \
                             ::serde::Value::Object(__map) }}\n"
                        );
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn de_named_fields(path: &str, fields: &[String], obj: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value({obj}.get({f:?})\
                 .ok_or_else(|| ::serde::Error::custom(\"{path}: missing field `{f}`\"))?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            format!(
                "let __obj = __value.as_object()\
                 .ok_or_else(|| ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                 Ok({})",
                de_named_fields(name, fields, "__obj")
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(__value)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __value.as_array()\
                 .ok_or_else(|| ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return Err(::serde::Error::custom(\"{name}: wrong tuple length\"));\n}}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms += &format!("{v:?} => Ok({name}::{v}),\n");
                    }
                    Fields::Tuple(1) => {
                        data_arms += &format!(
                            "{v:?} => Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize_value(__inner)?)),\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?")
                            })
                            .collect();
                        data_arms += &format!(
                            "{v:?} => {{\n\
                             let __arr = __inner.as_array()\
                             .ok_or_else(|| ::serde::Error::custom(\"{name}::{v}: expected array\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"{name}::{v}: wrong tuple length\"));\n}}\n\
                             Ok({name}::{v}({}))\n}}\n",
                            elems.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        data_arms += &format!(
                            "{v:?} => {{\n\
                             let __obj = __inner.as_object()\
                             .ok_or_else(|| ::serde::Error::custom(\"{name}::{v}: expected object\"))?;\n\
                             Ok({})\n}}\n",
                            de_named_fields(&format!("{name}::{v}"), fs, "__obj")
                        );
                    }
                }
            }
            format!(
                "if let Some(__s) = __value.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 __other => Err(::serde::Error::custom(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n}};\n}}\n\
                 let __obj = __value.as_object()\
                 .ok_or_else(|| ::serde::Error::custom(\"{name}: expected string or object\"))?;\n\
                 if __obj.len() != 1 {{\n\
                 return Err(::serde::Error::custom(\"{name}: expected single-key object\"));\n}}\n\
                 let (__tag, __inner) = __obj.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => Err(::serde::Error::custom(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n\
         #[allow(unused_imports)] use ::std::result::Result::{{Ok, Err}};\n\
         {body}\n}}\n}}\n"
    )
}
