//! `Serialize`/`Deserialize` implementations for primitives and the
//! std container types this workspace serialises.

use crate::{Deserialize, Error, Map, Number, Serialize, Value};

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    // JSON has no non-finite numbers; mirror serde_json's
                    // `arbitrary_precision`-less behaviour of emitting null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Null => Ok(<$t>::NAN),
                    _ => value
                        .as_f64()
                        .map(|v| v as $t)
                        .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let v: Vec<T> = Vec::deserialize_value(value)?;
        let n = v.len();
        v.try_into().map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+ ; $len:literal)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                if arr.len() != $len {
                    return Err(Error::custom(concat!("expected array of length ", $len)));
                }
                Ok(($($name::deserialize_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
    (A.0, B.1, C.2, D.3, E.4; 5),
);

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for Map {
    fn serialize_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.serialize_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| Error::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.serialize_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| Error::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?))).collect()
    }
}
