//! Shim for `serde`: instead of the visitor/format-generic design,
//! [`Serialize`] renders directly into a JSON [`Value`] tree and
//! [`Deserialize`] reads one back. `serde_json` (the sibling shim) adds
//! the text format on top. The derive macros (re-exported from
//! `serde_derive`) produce the same external shapes real serde would:
//! field-name objects for structs, externally-tagged enums, bare
//! strings for unit variants.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialisation error (also covers JSON syntax errors in serde_json).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}
