//! The JSON value tree shared by the serde and serde_json shims.

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number: unsigned, signed-negative, or float.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace the value under `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn iter(&self) -> std::slice::Iter<'_, (String, Value)> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Missing keys and non-objects index to `Null` (as in serde_json).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifies: indexing `Null` with a key turns it into an
    /// object; a missing key is inserted as `Null`.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let Value::Object(map) = self else {
            panic!("cannot index non-object value with key {key:?}");
        };
        if map.get(key).is_none() {
            map.insert(key, Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            other => panic!("cannot index {other:?} with {idx}"),
        }
    }
}
