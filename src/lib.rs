//! Umbrella crate for the NeuroCuts workspace: re-exports every member
//! crate so examples and integration tests can depend on one package.
//!
//! * [`classbench`] — rules, packets, ClassBench-style generation;
//! * [`dtree`] — the shared decision-tree substrate;
//! * [`baselines`] — HiCuts / HyperCuts / HyperSplit / EffiCuts /
//!   CutSplit;
//! * [`nn`] — the dense policy network;
//! * [`rl`] — PPO and parallel samplers;
//! * [`neurocuts`] — the RL environment and trainer (the paper's
//!   contribution).

#![warn(missing_docs)]

pub use baselines;
pub use classbench;
pub use dtree;
pub use neurocuts;
pub use nn;
pub use rl;
